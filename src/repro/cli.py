"""Command-line interface.

Subcommands::

    repro simulate --preset default --out trace        # simulate + save
    repro --jobs 4 simulate --out trace --shards 4     # sharded (bit-identical)
    repro --jobs 4 experiment all                      # parallel fan-out
    repro characterize --preset default                # figs 1-8 stats
    repro evaluate --preset default --split DS1 --model gbdt
    repro experiment fig10 table2 ...                  # named artifacts
    repro experiment all                               # the full sweep
    repro faults --intensities 0,0.1,0.25 --seed 7     # degradation curve
    repro serve-replay --registry runs/registry        # online-path replay
    repro serve-replay --registry r --chaos 0.25       # chaos replay
    repro resilience --intensities 0,0.25 --seed 7     # availability curve
    repro registry verify --registry runs/registry     # checksum audit

All subcommands share the preset-keyed trace cache (see
``repro.experiments.runner.default_cache_dir``).  Library failures
(:class:`~repro.utils.errors.ReproError`) exit with status 1 and a
one-line message on stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, ExperimentContext, run_experiment
from repro.experiments.registry import run_experiments
from repro.experiments.faults_experiment import DEFAULT_INTENSITIES, run_faults
from repro.experiments.resilience_experiment import (
    DEFAULT_INTENSITIES as RESILIENCE_INTENSITIES,
    run_resilience,
)
from repro.experiments.presets import PRESETS, preset_config
from repro.telemetry.simulator import simulate_trace
from repro.utils.errors import ReproError, ValidationError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU SBE prediction reproduction (DSN 2018)",
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=sorted(PRESETS),
        help="simulation scale preset",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read/write the on-disk trace cache",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded simulation and experiment "
        "fan-out (results are bit-identical to --jobs 1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a trace and save it")
    sim.add_argument("--out", required=True, help="output path (without extension)")
    sim.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="row-shard count for the simulation (default: the --jobs "
        "value; merged output is bit-identical to a serial run)",
    )

    sub.add_parser("characterize", help="run the characterization experiments")

    ev = sub.add_parser("evaluate", help="train and evaluate one predictor")
    ev.add_argument("--split", default="DS1")
    ev.add_argument(
        "--model",
        default="gbdt",
        choices=["lr", "gbdt", "svm", "nn", "basic_a", "basic_b", "basic_c", "random"],
    )

    ex = sub.add_parser("experiment", help="run named experiments (or 'all')")
    ex.add_argument("ids", nargs="+", help=f"ids from {sorted(EXPERIMENTS)} or 'all'")

    fa = sub.add_parser(
        "faults", help="fault-injection degradation sweep (F1 vs intensity)"
    )
    fa.add_argument(
        "--intensities",
        default=None,
        help="comma-separated fault intensities in [0,1] "
        f"(default: {','.join(str(x) for x in DEFAULT_INTENSITIES)})",
    )
    fa.add_argument(
        "--seed", type=int, default=0, help="fault-injection seed (not the trace seed)"
    )
    fa.add_argument("--split", default="DS1")
    fa.add_argument("--model", default="gbdt", choices=["lr", "gbdt", "svm", "nn"])

    sv = sub.add_parser(
        "serve-replay",
        help="replay the trace through the online serving path "
        "(registry + streaming features + micro-batch scoring)",
    )
    sv.add_argument(
        "--registry", required=True, help="model registry root directory"
    )
    sv.add_argument("--split", default="DS1")
    sv.add_argument("--model", default="gbdt", choices=["lr", "gbdt", "svm", "nn"])
    sv.add_argument(
        "--batch-size", type=int, default=256, help="scorer micro-batch size"
    )
    sv.add_argument(
        "--flush-deadline",
        type=float,
        default=30.0,
        help="max event-time minutes a row may wait before scoring",
    )
    sv.add_argument(
        "--retrain-every",
        type=float,
        default=None,
        help="periodic retrain cadence in days (off by default)",
    )
    sv.add_argument("--seed", type=int, default=0, help="stage-2 model seed")
    sv.add_argument(
        "--fast", action="store_true", help="reduced-capacity stage-2 model"
    )
    sv.add_argument(
        "--sanitize",
        action="store_true",
        help="run the fault sanitizer on the trace before replay",
    )
    sv.add_argument(
        "--chaos",
        type=float,
        default=None,
        metavar="INTENSITY",
        help="serve-layer chaos intensity in [0,1] (off by default)",
    )
    sv.add_argument(
        "--chaos-seed", type=int, default=0, help="chaos-plan seed"
    )
    sv.add_argument(
        "--checkpoint-dir",
        default=None,
        help="commit resumable replay state under this directory",
    )
    sv.add_argument(
        "--checkpoint-every",
        type=int,
        default=2000,
        metavar="EVENTS",
        help="events between checkpoints (with --checkpoint-dir)",
    )
    sv.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest checkpoint under --checkpoint-dir",
    )
    sv.add_argument(
        "--crash-after",
        type=int,
        default=None,
        metavar="EVENTS",
        help="simulate a crash after this many events (resume test hook)",
    )

    rs = sub.add_parser(
        "resilience",
        help="serving availability vs chaos-intensity sweep",
    )
    rs.add_argument(
        "--intensities",
        default=None,
        help="comma-separated chaos intensities in [0,1] "
        f"(default: {','.join(str(x) for x in RESILIENCE_INTENSITIES)})",
    )
    rs.add_argument(
        "--seed", type=int, default=0, help="chaos-plan and model seed"
    )
    rs.add_argument("--split", default="DS1")
    rs.add_argument("--model", default="gbdt", choices=["lr", "gbdt", "svm", "nn"])

    rg = sub.add_parser(
        "registry", help="inspect a model registry (checksum audit)"
    )
    rg.add_argument("action", choices=["verify"], help="what to do")
    rg.add_argument(
        "--registry", required=True, help="model registry root directory"
    )
    rg.add_argument("--name", default="twostage", help="registered model name")
    return parser


def _parse_intensities(
    raw: str | None, default: tuple[float, ...] = DEFAULT_INTENSITIES
) -> tuple[float, ...]:
    """Parse the ``--intensities`` comma list, validating the range."""
    if raw is None:
        return default
    try:
        values = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise ValidationError(f"invalid --intensities value: {raw!r}") from None
    if not values or any(not 0.0 <= v <= 1.0 for v in values):
        raise ValidationError(
            f"--intensities must be numbers in [0, 1], got {raw!r}"
        )
    return values


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected subcommand; may raise :class:`ReproError`."""
    jobs = max(1, int(getattr(args, "jobs", 1)))
    context = ExperimentContext(
        args.preset, use_disk_cache=not args.no_cache, jobs=jobs
    )

    if args.command == "simulate":
        started = time.perf_counter()
        config = preset_config(args.preset)
        shards = args.shards if args.shards is not None else jobs
        if shards > 1 or jobs > 1:
            from repro.parallel.simulate import simulate_trace_sharded

            trace = simulate_trace_sharded(config, shards=max(1, shards), jobs=jobs)
        else:
            trace = simulate_trace(config)
        trace.save(args.out)
        stages = trace.meta.get("stage_seconds", {})
        stage_note = ", ".join(
            f"{name} {seconds:.1f}s" for name, seconds in sorted(stages.items())
        )
        print(
            f"simulated {trace.num_samples} samples over "
            f"{trace.config.duration_days:.0f} days in "
            f"{time.perf_counter() - started:.0f}s "
            f"({trace.meta.get('shards', 1)} shard(s); {stage_note}) "
            f"-> {args.out}.npz"
        )
        return 0

    if args.command == "characterize":
        for experiment_id in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            print(run_experiment(experiment_id, context))
            print()
        return 0

    if args.command == "evaluate":
        if args.model in ("basic_a", "basic_b", "basic_c", "random"):
            result = context.basic(args.split, args.model)
        else:
            result = context.twostage(args.split, args.model)
        print(
            f"{result.predictor} on {result.split}: "
            f"F1={result.f1:.3f} precision={result.precision:.3f} "
            f"recall={result.recall:.3f} (trained in {result.train_seconds:.1f}s)"
        )
        return 0

    if args.command == "experiment":
        ids = list(EXPERIMENTS) if args.ids == ["all"] else args.ids
        if jobs > 1 and len(ids) > 1:
            for result in run_experiments(
                ids,
                preset=args.preset,
                jobs=jobs,
                use_disk_cache=not args.no_cache,
            ):
                print(result)
                print()
        else:
            for experiment_id in ids:
                print(run_experiment(experiment_id, context))
                print()
        return 0

    if args.command == "serve-replay":
        from repro.serve import serve_replay
        from repro.serve.resilience import ChaosPlan

        chaos = (
            None
            if args.chaos is None
            else ChaosPlan(intensity=args.chaos, seed=args.chaos_seed)
        )
        report = serve_replay(
            context.trace,
            args.registry,
            splits=context.preset_splits(),
            split=args.split,
            model=args.model,
            batch_size=args.batch_size,
            flush_deadline_minutes=args.flush_deadline,
            retrain_every_days=args.retrain_every,
            random_state=args.seed,
            fast=args.fast,
            sanitize=args.sanitize,
            chaos=chaos,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_events=args.checkpoint_every,
            resume=args.resume,
            crash_after_events=args.crash_after,
        )
        print(report)
        return 0

    if args.command == "resilience":
        result = run_resilience(
            context,
            intensities=_parse_intensities(
                args.intensities, RESILIENCE_INTENSITIES
            ),
            seed=args.seed,
            model=args.model,
            split=args.split,
        )
        print(result)
        return 0

    if args.command == "registry":
        from repro.serve import ModelRegistry

        statuses = ModelRegistry(args.registry).verify(args.name)
        if not statuses:
            print(f"{args.name}: no version directories")
            return 0
        broken = 0
        for version, status in statuses:
            print(f"{args.name}/v{version:04d}  {status}")
            broken += status != "ok"
        print(
            f"{len(statuses)} version(s), {len(statuses) - broken} ok, "
            f"{broken} broken"
        )
        return 1 if broken else 0

    if args.command == "faults":
        result = run_faults(
            context,
            intensities=_parse_intensities(args.intensities),
            seed=args.seed,
            model=args.model,
            split=args.split,
            jobs=jobs,
        )
        print(result)
        return 0

    return 2  # pragma: no cover - argparse enforces the command set


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors surface as a single stderr line and exit status 1;
    programming errors still propagate with a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
