"""Trace characterization (paper Section III).

Every statistic and distribution behind Figs. 1-8 is computed here from a
:class:`~repro.telemetry.trace.Trace`:

* offender-node and SBE-affected-aprun cabinet grids (Figs. 1-2);
* application SBE skew and affected-execution fractions (Fig. 3);
* SBE-vs-utilization rank correlations (Fig. 4);
* cumulative temperature/power cabinet grids and their (weak) correlation
  with the offender grid (Fig. 5);
* temperature/power distributions during SBE-free vs SBE-affected periods
  (Figs. 6-7);
* repeated-run temperature/power profiles with neighbour context (Fig. 8).
"""

from repro.analysis.characterization import (
    app_sbe_skew,
    cabinet_grids,
    offender_day_coverage,
    period_distributions,
    run_profile_pairs,
    utilization_correlations,
)

__all__ = [
    "app_sbe_skew",
    "cabinet_grids",
    "offender_day_coverage",
    "period_distributions",
    "run_profile_pairs",
    "utilization_correlations",
]
