"""Computations behind the paper's characterization figures (Section III)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.trace import Trace
from repro.utils.errors import ValidationError
from repro.utils.stats import spearman

__all__ = [
    "CabinetGrids",
    "cabinet_grids",
    "AppSkew",
    "app_sbe_skew",
    "utilization_correlations",
    "PeriodDistributions",
    "period_distributions",
    "offender_day_coverage",
    "run_profile_pairs",
]

MINUTES_PER_DAY = 1440.0


# ----------------------------------------------------------------------
# Figs. 1, 2, 5: cabinet-level grids
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CabinetGrids:
    """Cabinet-level aggregates, each shaped ``(grid_y, grid_x)``."""

    offender_nodes: np.ndarray
    affected_apruns: np.ndarray
    mean_temperature: np.ndarray
    mean_power: np.ndarray
    #: Node-level Spearman correlations with SBE-affectedness.
    temp_sbe_spearman: float
    power_sbe_spearman: float


def cabinet_grids(trace: Trace) -> CabinetGrids:
    """Compute the grids of Figs. 1, 2 and 5 plus their correlations."""
    machine = trace.machine
    s = trace.samples
    node_sbe = trace.node_sbe_totals()
    offender_per_node = (node_sbe > 0).astype(float)

    affected = s["sbe_count"] > 0
    affected_per_node = np.zeros(machine.num_nodes)
    np.add.at(affected_per_node, s["node_id"][affected].astype(int), 1.0)

    sbe_binary = offender_per_node
    return CabinetGrids(
        offender_nodes=machine.cabinet_grid(offender_per_node, reduce="sum"),
        affected_apruns=machine.cabinet_grid(affected_per_node, reduce="sum"),
        mean_temperature=machine.cabinet_grid(trace.node_mean_temp, reduce="mean"),
        mean_power=machine.cabinet_grid(trace.node_mean_power, reduce="mean"),
        temp_sbe_spearman=spearman(trace.node_mean_temp, sbe_binary),
        power_sbe_spearman=spearman(trace.node_mean_power, sbe_binary),
    )


# ----------------------------------------------------------------------
# Fig. 3: application skew
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppSkew:
    """Application-level SBE distribution (paper Fig. 3)."""

    #: Cumulative SBE share of SBE-affected apps, sorted most-affected
    #: first (Fig. 3(a)'s curve, evaluated at every app).
    cumulative_share: np.ndarray
    #: Fraction of each SBE-affected app's executions that saw an SBE,
    #: sorted in the same order (basis of Fig. 3(b)).
    affected_run_fraction: np.ndarray
    #: Share of all SBEs held by the top 20% most-affected apps.
    top20_share: float
    #: Number of SBE-affected applications / total applications.
    num_affected: int
    num_apps: int


def app_sbe_skew(trace: Trace) -> AppSkew:
    """Compute the SBE skew across applications."""
    s = trace.samples
    num_apps = len(trace.app_names)
    sbe_per_app = np.zeros(num_apps, dtype=np.int64)
    np.add.at(sbe_per_app, s["app_id"].astype(int), s["sbe_count"].astype(np.int64))

    runs = trace.runs
    run_apps = runs["app_id"].astype(int)
    run_affected = runs["sbe_total"] > 0
    runs_per_app = np.bincount(run_apps, minlength=num_apps).astype(float)
    affected_per_app = np.bincount(
        run_apps[run_affected], minlength=num_apps
    ).astype(float)

    affected_apps = np.nonzero(sbe_per_app > 0)[0]
    if affected_apps.size == 0:
        raise ValidationError("trace has no SBE-affected applications")
    order = affected_apps[np.argsort(sbe_per_app[affected_apps])[::-1]]
    sorted_counts = sbe_per_app[order].astype(float)
    cumulative = np.cumsum(sorted_counts) / sorted_counts.sum()
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.where(
            runs_per_app[order] > 0, affected_per_app[order] / runs_per_app[order], 0.0
        )
    top_k = max(1, int(np.ceil(0.2 * order.size)))
    return AppSkew(
        cumulative_share=cumulative,
        affected_run_fraction=frac,
        top20_share=float(cumulative[top_k - 1]),
        num_affected=int(order.size),
        num_apps=num_apps,
    )


# ----------------------------------------------------------------------
# Fig. 4: SBE vs utilization correlations
# ----------------------------------------------------------------------
def utilization_correlations(trace: Trace) -> dict[str, float]:
    """Spearman correlations of per-app normalized SBE rate with
    utilization (paper Fig. 4 insets: core-hours 0.89, memory 0.70).

    Points are SBE-affected applications; the SBE count is normalized by
    the application's accumulated GPU core-hours.
    """
    s = trace.samples
    num_apps = len(trace.app_names)
    app_ids = s["app_id"].astype(int)
    sbe = np.zeros(num_apps)
    core_hours = np.zeros(num_apps)
    mem = np.zeros(num_apps)
    counts = np.bincount(app_ids, minlength=num_apps).astype(float)
    np.add.at(sbe, app_ids, s["sbe_count"].astype(float))
    np.add.at(core_hours, app_ids, s["gpu_core_hours"] / np.maximum(s["n_nodes"], 1))
    np.add.at(mem, app_ids, s["max_mem_gb"])
    affected = sbe > 0
    if affected.sum() < 3:
        raise ValidationError("not enough SBE-affected applications")
    norm_sbe = sbe[affected] / np.maximum(core_hours[affected], 1e-9)
    mean_mem = mem[affected] / np.maximum(counts[affected], 1.0)
    return {
        "core_hours": spearman(norm_sbe, core_hours[affected]),
        "memory": spearman(norm_sbe, mean_mem),
    }


# ----------------------------------------------------------------------
# Figs. 6-7: temperature/power in SBE-free vs SBE-affected periods
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PeriodDistributions:
    """Telemetry distributions on offender nodes, split by SBE outcome."""

    temp_free: np.ndarray
    temp_affected: np.ndarray
    power_free: np.ndarray
    power_affected: np.ndarray

    @property
    def temp_elevation(self) -> float:
        """Mean temperature difference, affected minus free (paper: >3C)."""
        return float(self.temp_affected.mean() - self.temp_free.mean())

    @property
    def power_elevation(self) -> float:
        """Mean power difference, affected minus free (paper: >15W)."""
        return float(self.power_affected.mean() - self.power_free.mean())


def period_distributions(trace: Trace) -> PeriodDistributions:
    """Per-run mean temperature/power on offender nodes, split by outcome."""
    s = trace.samples
    node_sbe = trace.node_sbe_totals()
    offenders = np.nonzero(node_sbe > 0)[0]
    if offenders.size == 0:
        raise ValidationError("trace has no offender nodes")
    on_offender = np.isin(s["node_id"].astype(int), offenders)
    affected = s["sbe_count"] > 0
    return PeriodDistributions(
        temp_free=s["gpu_temp_mean"][on_offender & ~affected].astype(float),
        temp_affected=s["gpu_temp_mean"][on_offender & affected].astype(float),
        power_free=s["gpu_power_mean"][on_offender & ~affected].astype(float),
        power_affected=s["gpu_power_mean"][on_offender & affected].astype(float),
    )


def offender_day_coverage(trace: Trace) -> np.ndarray:
    """Per-offender-node fraction of trace days with at least one SBE.

    Paper §III-A: 80% of offender nodes err on fewer than 20% of days.
    """
    s = trace.samples
    affected = s["sbe_count"] > 0
    if not affected.any():
        raise ValidationError("trace has no SBEs")
    nodes = s["node_id"][affected].astype(int)
    days = (s["start_minute"][affected] // MINUTES_PER_DAY).astype(int)
    total_days = int(np.ceil(trace.config.duration_days))
    coverage = []
    for node in np.unique(nodes):
        node_days = np.unique(days[nodes == node])
        coverage.append(node_days.size / max(total_days, 1))
    return np.asarray(coverage)


# ----------------------------------------------------------------------
# Fig. 8: repeated-run profiles
# ----------------------------------------------------------------------
def run_profile_pairs(
    trace: Trace,
    node_id: int,
    *,
    context_minutes: float = 30.0,
    max_pairs: int = 2,
) -> list[dict[str, np.ndarray]]:
    """Telemetry profiles of repeated runs of one app on a recorded node.

    Returns up to ``max_pairs`` run windows (the paper shows two) of the
    most-repeated application on ``node_id``, each with the node's GPU
    temperature/power, CPU temperature, and slot/cage averages, including
    ``context_minutes`` before and after the run.  Requires the node to be
    in ``trace.config.record_nodes``.
    """
    if node_id not in trace.recorded_series:
        raise ValidationError(
            f"node {node_id} was not recorded; set record_nodes in TraceConfig"
        )
    series = trace.recorded_series[node_id]
    minutes = series["minute"]

    s = trace.samples
    on_node = s["node_id"].astype(int) == node_id
    app_ids = s["app_id"][on_node].astype(int)
    if app_ids.size == 0:
        raise ValidationError(f"node {node_id} ran no applications")
    top_app = int(np.bincount(app_ids).argmax())
    chosen = on_node & (s["app_id"] == top_app)
    starts = s["start_minute"][chosen]
    ends = s["end_minute"][chosen]
    order = np.argsort(starts)

    profiles = []
    for idx in order[: max(0, int(max_pairs))]:
        lo = starts[idx] - context_minutes
        hi = ends[idx] + context_minutes
        window = (minutes >= lo) & (minutes <= hi)
        profile = {name: values[window] for name, values in series.items()}
        profile["run_start"] = np.asarray([starts[idx]])
        profile["run_end"] = np.asarray([ends[idx]])
        profile["app_id"] = np.asarray([top_app])
        profiles.append(profile)
    return profiles
