"""Simulation presets for experiments and tests.

The ``default`` preset keeps the paper's full 25 x 8 cabinet floor grid —
so every spatial analysis runs on the real geometry — while scaling the
per-cabinet population and sampling interval to laptop reach (DESIGN.md,
"Scale substitution").  ``small`` trades fidelity for speed; ``tiny`` is
for unit tests only.
"""

from __future__ import annotations

from repro.telemetry.config import TraceConfig
from repro.topology.machine import MachineConfig
from repro.utils.errors import ValidationError

__all__ = ["PRESETS", "preset_config"]


def _default() -> TraceConfig:
    return TraceConfig(
        machine=MachineConfig(
            grid_x=25,
            grid_y=8,
            cages_per_cabinet=1,
            slots_per_cage=1,
            nodes_per_slot=4,
        ),
        duration_days=126.0,
        tick_minutes=5.0,
        seed=2018,
        record_nodes=(5,),
    )


def _small() -> TraceConfig:
    return TraceConfig(
        machine=MachineConfig(
            grid_x=25,
            grid_y=8,
            cages_per_cabinet=1,
            slots_per_cage=1,
            nodes_per_slot=2,
        ),
        duration_days=70.0,
        tick_minutes=10.0,
        seed=2018,
        record_nodes=(5,),
    )


def _tiny() -> TraceConfig:
    # Unit-test scale: 16 days cannot host the default (rare, multi-day)
    # degradation episodes, so the error model is made much hotter to keep
    # both classes populated in every split window.
    from repro.telemetry.config import ErrorModelConfig

    return TraceConfig(
        machine=MachineConfig(
            grid_x=6,
            grid_y=4,
            cages_per_cabinet=1,
            slots_per_cage=1,
            nodes_per_slot=4,
        ),
        errors=ErrorModelConfig(
            base_rate_per_hour=0.004,
            offender_node_fraction=0.25,
            offender_median_boost=2.0,
            episode_rate_per_100_days=30.0,
            episode_median_days=3.0,
            quiet_day_factor=0.01,
        ),
        duration_days=16.0,
        tick_minutes=10.0,
        seed=2018,
        record_nodes=(3,),
    )


PRESETS = {
    "default": _default,
    "small": _small,
    "tiny": _tiny,
}


def preset_config(name: str) -> TraceConfig:
    """Return a fresh :class:`TraceConfig` for the named preset."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ValidationError(
            f"unknown preset {name!r}; options: {sorted(PRESETS)}"
        ) from None
    return factory()


def split_plan(name: str) -> dict[str, float]:
    """Train/test span (days) appropriate for a preset's trace length."""
    if name in ("default",):
        return {"train_days": 84.0, "test_days": 14.0, "offsets": (0.0, 14.0, 28.0)}
    if name == "small":
        return {"train_days": 44.0, "test_days": 8.0, "offsets": (0.0, 9.0, 18.0)}
    if name == "tiny":
        return {"train_days": 10.0, "test_days": 3.0, "offsets": (0.0, 1.5, 3.0)}
    raise ValidationError(f"unknown preset {name!r}; options: {sorted(PRESETS)}")
