"""Registry of all experiments, keyed by paper artifact id."""

from __future__ import annotations

from typing import Callable

from repro.experiments import characterization_experiments as chz
from repro.experiments import prediction_experiments as pred
from repro.experiments.drift_experiment import run_drift
from repro.experiments.faults_experiment import run_faults
from repro.experiments.gateway_experiment import run_gateway
from repro.experiments.imbalance_experiment import run_imbalance
from repro.experiments.oracle_experiment import run_oracle
from repro.experiments.resilience_experiment import run_resilience
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.parallel.runner import ParallelRunner, experiment_cells, run_experiment_cell
from repro.utils.errors import ValidationError

__all__ = ["EXPERIMENTS", "run_experiment", "run_experiments"]

#: Experiment id -> (title, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentContext], ExperimentResult]]] = {
    "fig1": ("Offender-node cabinet grid", chz.run_fig1),
    "fig2": ("SBE-affected aprun cabinet grid", chz.run_fig2),
    "fig3": ("Application SBE skew", chz.run_fig3),
    "fig4": ("SBE vs utilization correlations", chz.run_fig4),
    "fig5": ("Temperature/power cabinet grids", chz.run_fig5),
    "fig6": ("Temperature by SBE period", chz.run_fig6),
    "fig7": ("Power by SBE period", chz.run_fig7),
    "fig8": ("Repeated-run profiles", chz.run_fig8),
    "table1": ("Basic schemes precision/recall", pred.run_table1),
    "fig10": ("Model comparison on DS1", pred.run_fig10),
    "table2": ("F1 across datasets", pred.run_table2),
    "table3": ("Training-time comparison", pred.run_table3),
    "fig11": ("Feature-group contributions", pred.run_fig11),
    "table4": ("Temp/power feature variants", pred.run_table4),
    "fig12": ("History-feature ablations", pred.run_fig12),
    "fig13": ("Spatial robustness", pred.run_fig13),
    "table5": ("Runtime classes", pred.run_table5),
    "table6": ("Severity levels", pred.run_table6),
    "ecc": ("Prediction-driven ECC scheduling", pred.run_ecc_policy),
    "imbalance": ("Imbalance-mitigation comparison", run_imbalance),
    "oracle": ("Oracle per-cabinet model selection", run_oracle),
    "faults": ("Telemetry fault-injection degradation curve", run_faults),
    "resilience": ("Serving availability vs chaos intensity", run_resilience),
    "gateway": ("Fleet gateway throughput and zero-drop accounting", run_gateway),
    "drift": ("Drift resilience: stale vs governed vs fresh serving", run_drift),
}


def run_experiment(
    experiment_id: str, context: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment by id (builds a default context if needed)."""
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; options: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(context or ExperimentContext())


def run_experiments(
    experiment_ids: list[str],
    *,
    preset: str = "default",
    jobs: int = 1,
    cache_dir=None,
    use_disk_cache: bool = True,
) -> list[ExperimentResult]:
    """Run several experiments, optionally fanned over worker processes.

    Results come back in the order of ``experiment_ids`` regardless of
    which worker finishes first, so ``jobs=N`` output is identical to
    ``jobs=1``.  Before fanning out, the trace/feature caches are warmed
    once in this process (when disk caching is on) so workers load the
    shared entries instead of each re-simulating the trace.
    """
    unknown = [eid for eid in experiment_ids if eid not in EXPERIMENTS]
    if unknown:
        raise ValidationError(
            f"unknown experiments {unknown}; options: {sorted(EXPERIMENTS)}"
        )
    if jobs > 1 and len(experiment_ids) > 1 and use_disk_cache:
        warm = ExperimentContext(
            preset, cache_dir=cache_dir, use_disk_cache=True, jobs=jobs
        )
        warm.features  # simulates (sharded) + builds features, filling the cache
    if jobs == 1 or len(experiment_ids) <= 1:
        context = ExperimentContext(
            preset, cache_dir=cache_dir, use_disk_cache=use_disk_cache, jobs=jobs
        )
        return [run_experiment(eid, context) for eid in experiment_ids]
    cells = experiment_cells(
        experiment_ids,
        preset=preset,
        cache_dir=cache_dir,
        use_disk_cache=use_disk_cache,
    )
    return ParallelRunner(jobs).map(run_experiment_cell, cells)
