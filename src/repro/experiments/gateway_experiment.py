"""Gateway load experiment: fleet throughput, latency, and zero-drop.

Drives the synthetic client fleet through the sharded gateway at each
shard count, clean and under the moderate chaos plan, and reports the
serving numbers an operator would size the tier by: sustained ingest
events/sec, p50/p99 per-event scoring latency, alert and alarm volumes,
and the zero-drop ledger (``events_in == scored + dead_lettered +
rejected`` — the experiment *fails* if any configuration drops events
silently or leaves rows unresolved).
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.gateway.core import GatewayConfig, build_gateway
from repro.gateway.fleet import run_fleet
from repro.serve.resilience import ChaosPlan
from repro.utils.errors import ValidationError
from repro.utils.tables import format_table

__all__ = ["run_gateway", "DEFAULT_SHARD_COUNTS"]

DEFAULT_SHARD_COUNTS = (1, 2, 4)


def _run_one(
    trace,
    splits,
    *,
    shards: int,
    clients: int,
    chaos: ChaosPlan | None,
    model: str,
    split: str,
    seed: int,
    batch_size: int,
) -> dict:
    async def drive() -> dict:
        with tempfile.TemporaryDirectory() as root:
            gateway = build_gateway(
                trace,
                root,
                splits=splits,
                split=split,
                model=model,
                config=GatewayConfig(shards=shards, batch_size=batch_size),
                random_state=seed,
                fast=True,
                chaos=chaos,
            )
            await gateway.start()
            fleet = await run_fleet(gateway, trace, clients=clients)
            await gateway.close()
            latency = gateway.latency_percentiles()
            unresolved = sum(
                w.scorer.resilience.unresolved_rows for w in gateway.workers
            )
            return {
                "shards": shards,
                "clients": clients,
                "chaos_intensity": 0.0 if chaos is None else chaos.intensity,
                "events_in": gateway.stats.events_in,
                "events_scored": gateway.stats.events_scored,
                "events_dead_lettered": gateway.stats.events_dead_lettered,
                "events_rejected": gateway.stats.events_rejected,
                "zero_drop": gateway.stats.zero_drop,
                "unresolved_rows": unresolved,
                "alerts": len(gateway.scored_alerts),
                "alarms": len(gateway.alarm_engine.alarms),
                "escalations": gateway.alarm_engine.escalations,
                "events_per_second": (
                    fleet.events_sent / fleet.wall_seconds
                    if fleet.wall_seconds > 0
                    else 0.0
                ),
                "p50_ms": latency["p50"] * 1e3,
                "p99_ms": latency["p99"] * 1e3,
                "wall_seconds": fleet.wall_seconds,
            }

    return asyncio.run(drive())


def run_gateway(
    context: ExperimentContext,
    *,
    shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
    clients: int = 3,
    chaos_intensity: float = 0.25,
    seed: int = 7,
    model: str = "gbdt",
    split: str = "DS1",
    batch_size: int = 64,
) -> ExperimentResult:
    """Sweep shard counts, clean and under chaos; assert zero-drop."""
    trace = context.trace
    splits = context.preset_splits()
    points = []
    rows = []
    plans: tuple[ChaosPlan | None, ...] = (
        (None,)
        if chaos_intensity == 0.0
        else (None, ChaosPlan(intensity=chaos_intensity, seed=seed))
    )
    for shards in shard_counts:
        for chaos in plans:
            point = _run_one(
                trace,
                splits,
                shards=shards,
                clients=clients,
                chaos=chaos,
                model=model,
                split=split,
                seed=0,
                batch_size=batch_size,
            )
            if not point["zero_drop"]:
                raise ValidationError(
                    f"gateway dropped events silently at shards={shards}, "
                    f"chaos={point['chaos_intensity']}: {point}"
                )
            if point["unresolved_rows"]:
                raise ValidationError(
                    f"gateway left {point['unresolved_rows']} rows unresolved "
                    f"at shards={shards}, chaos={point['chaos_intensity']}"
                )
            points.append(point)
            rows.append(
                (
                    str(shards),
                    f"{point['chaos_intensity']:.2f}",
                    point["events_in"],
                    f"{point['events_per_second']:.0f}",
                    f"{point['p50_ms']:.2f}",
                    f"{point['p99_ms']:.2f}",
                    point["alerts"],
                    point["alarms"],
                    "yes" if point["zero_drop"] else "NO",
                )
            )
    text = format_table(
        [
            "shards",
            "chaos",
            "events",
            "events/s",
            "p50 ms",
            "p99 ms",
            "alerts",
            "alarms",
            "zero-drop",
        ],
        rows,
    )
    text += (
        f"\nall {len(points)} configurations drop-free "
        f"(events_in == scored + dead_lettered + rejected); "
        f"{clients} synthetic clients per run"
    )
    return ExperimentResult(
        experiment_id="gateway",
        title="Fleet gateway throughput and zero-drop accounting",
        text=text,
        data={
            "clients": clients,
            "chaos_intensity": chaos_intensity,
            "seed": seed,
            "points": points,
        },
    )
