"""Common result type for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment: rendered text plus raw data.

    ``text`` reproduces the paper's rows/series in human-readable form;
    ``data`` holds the raw numbers for assertions and downstream use.
    """

    experiment_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"
