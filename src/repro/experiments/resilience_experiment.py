"""Availability experiment: online serving quality vs chaos intensity.

Sweeps the serve-layer chaos master intensity, replaying the same trace
through the supervised online path each time, and reports the
availability curve: what fraction of test rows still got scored, how
much of that scoring fell to the fallback chain, how many rows passed
through the dead-letter queue, and what the detour cost in F1.  The
claim under test mirrors the telemetry-faults experiment one layer up:
at intensity 0 the supervision is an exact no-op (same digest as the
unsupervised replay), and at moderate intensity the pipeline still
scores ≥99% of rows instead of crashing.
"""

from __future__ import annotations

import tempfile

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.serve.replay import serve_replay
from repro.serve.resilience import ChaosPlan
from repro.utils.tables import format_table

__all__ = ["run_resilience", "DEFAULT_INTENSITIES"]

#: Sweep points: clean baseline, mild, moderate (the acceptance gate),
#: and severe.
DEFAULT_INTENSITIES = (0.0, 0.1, 0.25, 0.5)


def run_resilience(
    context: ExperimentContext,
    *,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    seed: int = 0,
    model: str = "gbdt",
    split: str = "DS1",
) -> ExperimentResult:
    """Run the chaos-intensity sweep and render the availability curve."""
    trace = context.trace
    splits = context.preset_splits()
    curve = []
    rows = []
    baseline_f1 = None
    for intensity in intensities:
        plan = (
            None
            if intensity == 0.0
            else ChaosPlan(intensity=intensity, seed=seed)
        )
        # A fresh registry root per point: version numbering and corrupt
        # chaos artifacts must not leak between sweep points.
        with tempfile.TemporaryDirectory() as root:
            report = serve_replay(
                trace,
                root,
                splits=splits,
                split=split,
                model=model,
                random_state=seed,
                fast=True,
                chaos=plan,
            )
        r = report.resilience
        if intensity == 0.0:
            baseline_f1 = report.online_f1
        point = {
            "intensity": intensity,
            "availability": r.availability,
            "fallback_share": r.fallback_share,
            "primary_rows": r.primary_rows,
            "fallback_rows": r.fallback_rows,
            "dead_lettered_rows": r.dead_lettered_rows,
            "replayed_rows": r.replayed_rows,
            "dead_letter_events": r.dead_letter_events,
            "breaker_trips": r.breaker_trips,
            "retries": r.retries,
            "agreement": report.agreement,
            "online_f1": report.online_f1,
            "f1_delta": report.online_f1 - (baseline_f1 or report.online_f1),
        }
        curve.append(point)
        rows.append(
            (
                f"{intensity:.2f}",
                point["availability"],
                point["fallback_share"],
                point["dead_lettered_rows"],
                point["replayed_rows"],
                point["breaker_trips"],
                point["agreement"],
                point["f1_delta"],
            )
        )

    chaotic = [p for p in curve if p["intensity"] > 0]
    min_availability = min((p["availability"] for p in chaotic), default=1.0)
    text = format_table(
        [
            "intensity",
            "availability",
            "fallback",
            "dead-lettered",
            "replayed",
            "trips",
            "agreement",
            "f1_delta",
        ],
        rows,
    )
    text += (
        f"\nclean-path availability: {curve[0]['availability']:.4f} "
        f"(supervision no-op); min availability over sweep: "
        f"{min_availability:.4f}; baseline online F1: "
        f"{(baseline_f1 if baseline_f1 is not None else float('nan')):.3f}"
    )
    return ExperimentResult(
        experiment_id="resilience",
        title="Serving availability vs chaos intensity",
        text=text,
        data={
            "split": split,
            "model": model,
            "seed": seed,
            "baseline_online_f1": baseline_f1,
            "curve": curve,
            "min_availability": min_availability,
        },
    )
