"""Drift experiment: stale vs governed vs fresh serving after a regime change.

Simulates cluster life with a mid-trace maintenance event (every node's
SBE susceptibility is redrawn — the offender population the stage-1
filter memorised stops being the offender population), then replays the
serving path three ways over the same trace:

* **stale** — the day-0 model frozen forever: its F1 collapses after
  the regime change (the gap under test is >= ``MIN_STALE_GAP``);
* **governed** — drift detectors + the retrain governor: drift-triggered,
  holdout-validated, windowed retrains recover to within
  ``MAX_GOVERNED_GAP`` of the fresh oracle;
* **fresh** — the oracle: a batch model trained entirely on post-change
  data, evaluated on the same late window.

A fourth leg poisons the first drift retrain (labels inverted, so the
candidate validates cleanly against its own poisoned holdout) and
requires the post-swap monitor to roll it back automatically.

All four legs replay the *same* simulated trace; the evaluation window
is the late tail of the serving period, far enough after the change for
every leg to have settled.  ``repro experiment drift`` renders the
comparison; the raw numbers (including time-to-recover) seed
``BENCH_drift.json`` for the bench trajectory gate.
"""

from __future__ import annotations

import dataclasses
import tempfile

from repro.experiments.presets import preset_config, split_plan
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.features.builder import build_features
from repro.features.splits import DatasetSplit
from repro.core.twostage import TwoStagePredictor
from repro.scenarios import Maintenance, Scenario
from repro.serve.drift import DriftConfig, positive_f1
from repro.serve.replay import ReplayReport, serve_replay
from repro.telemetry.simulator import simulate_trace
from repro.utils.tables import format_table

__all__ = [
    "run_drift",
    "drift_plan",
    "MIN_STALE_GAP",
    "MAX_GOVERNED_GAP",
]

MINUTES_PER_DAY = 1440.0

#: A frozen model must lose at least this much F1 to the fresh oracle.
MIN_STALE_GAP = 0.10
#: The governed path must land within this much of the fresh oracle.
MAX_GOVERNED_GAP = 0.05


def drift_plan(preset: str) -> dict[str, float]:
    """Time plan (days) for the drift trace, scaled from the preset.

    With the preset's training span ``train`` and test span ``T``::

        train window   [0, train)
        serving starts  train
        regime change   train + T
        fresh training  [change + T/3, change + 7T/3)
        evaluation      [change + 7T/3, change + 13T/3)  (= end of trace)
    """
    plan = split_plan(preset)
    train = plan["train_days"]
    t = plan["test_days"]
    change = train + t
    return {
        "train_days": train,
        "change_day": change,
        "fresh_train_start": change + t / 3.0,
        "fresh_train_end": change + 7.0 * t / 3.0,
        "eval_start": change + 7.0 * t / 3.0,
        "duration_days": change + 13.0 * t / 3.0,
    }


def drift_trace_config(preset: str):
    """The preset's config, extended and given the regime-change scenario."""
    plan = drift_plan(preset)
    return dataclasses.replace(
        preset_config(preset),
        duration_days=plan["duration_days"],
        scenario=Scenario(
            events=(
                Maintenance(day=plan["change_day"], susceptibility_scale=1.5),
            ),
            seed=1,
        ),
    )


def drift_detector_config() -> DriftConfig:
    """Governor tuning for the experiment's short serving horizon."""
    return DriftConfig(
        reference_rows=256,
        window_rows=256,
        f1_window=120,
        min_labels=40,
        check_every_minutes=180.0,
        cooldown_minutes=1440.0,
        min_holdout=30,
        postswap_min_labels=60,
    )


def _window_f1(report: ReplayReport, y_by_key, after_minute: float) -> float:
    """SBE-class F1 of a replay's alerts landing after ``after_minute``."""
    tp = fp = fn = 0
    for alert in report.alerts:
        key = (alert.run_idx, alert.node_id)
        if key not in y_by_key or alert.end_minute <= after_minute:
            continue
        actual = y_by_key[key]
        if alert.predicted and actual:
            tp += 1
        elif alert.predicted and not actual:
            fp += 1
        elif not alert.predicted and actual:
            fn += 1
    if 2 * tp + fp + fn == 0:
        return 0.0
    return 2.0 * tp / (2 * tp + fp + fn)


def run_drift(
    context: ExperimentContext,
    *,
    seed: int = 0,
    model: str = "gbdt",
) -> ExperimentResult:
    """Run the four-leg drift comparison on the context's preset scale."""
    preset = context.preset
    plan = drift_plan(preset)
    trace = simulate_trace(drift_trace_config(preset))
    change_minute = plan["change_day"] * MINUTES_PER_DAY
    eval_after = plan["eval_start"] * MINUTES_PER_DAY

    split = DatasetSplit(
        "DRIFT",
        0.0,
        plan["train_days"] * MINUTES_PER_DAY,
        plan["duration_days"] * MINUTES_PER_DAY,
    )
    features = build_features(trace, top_k_apps=16)
    y_by_key = {
        (int(r), int(n)): bool(y)
        for r, n, y in zip(
            features.meta["run_idx"], features.meta["node_id"], features.y
        )
    }

    dcfg = drift_detector_config()
    # Sliding refit window: ~2.7 test-spans, wide enough that the first
    # post-change refit still has both classes, narrow enough that the
    # dead regime washes out of the training set within days.
    window_days = 8.0 * (plan["change_day"] - plan["train_days"]) / 3.0

    def replay(**kwargs) -> ReplayReport:
        with tempfile.TemporaryDirectory() as root:
            return serve_replay(
                trace,
                root,
                splits=[split],
                split="DRIFT",
                model=model,
                random_state=seed,
                fast=True,
                **kwargs,
            )

    stale = replay()
    governed = replay(drift=dcfg, retrain_window_days=window_days)
    poisoned = replay(
        drift=dcfg, retrain_window_days=window_days, poison_retrains=(0,)
    )

    # Fresh oracle: batch-trained entirely on post-change data.
    start = features.meta["start_minute"]
    fresh_split = DatasetSplit(
        "FRESH",
        plan["fresh_train_start"] * MINUTES_PER_DAY,
        plan["fresh_train_end"] * MINUTES_PER_DAY,
        plan["duration_days"] * MINUTES_PER_DAY,
    )
    fresh = TwoStagePredictor(model, random_state=seed, fast=True)
    fresh.fit(features.rows(fresh_split.train_mask(start)))
    fresh_f1 = positive_f1(fresh, features.rows(fresh_split.test_mask(start)))

    stale_f1 = _window_f1(stale, y_by_key, eval_after)
    governed_f1 = _window_f1(governed, y_by_key, eval_after)

    # Time to recover: first governed swap published after the regime
    # change (the windowed refit that re-learns the new offender set).
    recovery_swaps = [
        m for m, _ in governed.drift.get("swaps", []) if m >= change_minute
    ]
    time_to_recover_days = (
        (recovery_swaps[0] - change_minute) / MINUTES_PER_DAY
        if recovery_swaps
        else float("inf")
    )

    poison_rollbacks = poisoned.drift.get("rollbacks", [])
    poison_caught = poisoned.rollbacks >= 1 or poisoned.retrains_rejected >= 1

    rows = [
        ("stale (frozen day-0 model)", f"{stale_f1:.4f}", f"{fresh_f1 - stale_f1:+.4f}"),
        ("governed (drift retrains)", f"{governed_f1:.4f}", f"{fresh_f1 - governed_f1:+.4f}"),
        ("fresh (post-change oracle)", f"{fresh_f1:.4f}", "+0.0000"),
    ]
    text = format_table(["serving mode", "late-window F1", "gap to fresh"], rows)
    text += (
        f"\nregime change at day {plan['change_day']:g}; evaluation window "
        f"day {plan['eval_start']:g}+\n"
        f"governed: {governed.retrains} retrains "
        f"({governed.drift_retrains} drift-triggered, "
        f"{governed.retrains_rejected} rejected by holdout, "
        f"{governed.rollbacks} rollbacks); "
        f"time to recover {time_to_recover_days:.2f} days\n"
        f"poisoned leg: first retrain poisoned -> "
        f"{poisoned.rollbacks} automatic rollback(s) "
        f"({'caught' if poison_caught else 'NOT CAUGHT'})"
    )
    return ExperimentResult(
        experiment_id="drift",
        title="Drift resilience: stale vs governed vs fresh serving",
        text=text,
        data={
            "preset": preset,
            "model": model,
            "seed": seed,
            "plan": plan,
            "stale_f1": stale_f1,
            "governed_f1": governed_f1,
            "fresh_f1": fresh_f1,
            "stale_gap": fresh_f1 - stale_f1,
            "governed_gap": fresh_f1 - governed_f1,
            "time_to_recover_days": time_to_recover_days,
            "governed_retrains": governed.retrains,
            "governed_drift_retrains": governed.drift_retrains,
            "governed_rejected": governed.retrains_rejected,
            "governed_rollbacks": governed.rollbacks,
            "governed_triggers": governed.drift.get("triggers", []),
            "poison_rollbacks": poisoned.rollbacks,
            "poison_rollback_events": poison_rollbacks,
            "poison_caught": poison_caught,
            "min_stale_gap": MIN_STALE_GAP,
            "max_governed_gap": MAX_GOVERNED_GAP,
        },
    )
