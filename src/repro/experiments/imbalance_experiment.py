"""Imbalance-mitigation comparison (paper Section VI-B).

Before proposing TwoStage, the paper surveys the standard answers to a
~50:1 class imbalance: over-sampling the minority class with synthetic
samples (SMOTE), random under-sampling of the majority, and
clustering-controlled (k-means) under-sampling.  This experiment trains
the same GBDT on the *full* (un-filtered) DS1 training window under each
strategy and compares against the TwoStage method, quantifying the
paper's argument that exploiting the dataset's own structure beats
generic resampling.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.registry import make_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.ml.metrics import precision_recall_f1
from repro.ml.sampling import KMeansUnderSampler, RandomUnderSampler, SMOTE
from repro.utils.tables import format_table

__all__ = ["run_imbalance"]

#: Majority:minority ratio targeted by the resamplers (the ~2:1 balance
#: the paper says stage 1 produces).
_TARGET_RATIO = 2.0

#: Row cap for the strategies that train on the full (un-filtered)
#: window; keeps the comparison tractable on one core while preserving
#: the class ratio.  TwoStage needs no such cap -- that asymmetry is the
#: paper's overhead argument.
_FULL_DATA_CAP = 60_000


def run_imbalance(context: ExperimentContext) -> ExperimentResult:
    """Compare resampling strategies against TwoStage on DS1."""
    train, test = context.pipeline.train_test("DS1")
    if train.num_samples > _FULL_DATA_CAP:
        rng = np.random.default_rng(0)
        keep = rng.choice(train.num_samples, size=_FULL_DATA_CAP, replace=False)
        mask = np.zeros(train.num_samples, dtype=bool)
        mask[keep] = True
        train = train.rows(mask)
    X_train, _ = train.columns()
    X_test, _ = test.columns()

    strategies = {
        "none (full data)": None,
        "random under-sampling": RandomUnderSampler(
            ratio=_TARGET_RATIO, random_state=0
        ),
        "smote over-sampling": SMOTE(ratio=1.0 / _TARGET_RATIO, random_state=0),
        "kmeans under-sampling": KMeansUnderSampler(
            ratio=_TARGET_RATIO, random_state=0
        ),
    }
    rows = []
    data: dict[str, dict[str, float]] = {}
    for label, sampler in strategies.items():
        Xr, yr = (X_train, train.y) if sampler is None else _resample(
            sampler, X_train, train.y
        )
        model = make_model("gbdt", random_state=0)
        started = time.perf_counter()
        model.fit(Xr, yr)
        seconds = time.perf_counter() - started
        p, r, f1 = precision_recall_f1(test.y, model.predict(X_test))
        rows.append((label, Xr.shape[0], p, r, f1, seconds))
        data[label] = {"precision": p, "recall": r, "f1": f1, "train_seconds": seconds}

    twostage = context.twostage("DS1", "gbdt")
    rows.append(
        (
            "twostage (paper)",
            int(np.isin(train.meta["node_id"], np.unique(
                train.meta["node_id"][train.meta["sbe_count"] > 0]
            )).sum()),
            twostage.precision,
            twostage.recall,
            twostage.f1,
            twostage.train_seconds,
        )
    )
    data["twostage"] = {
        "precision": twostage.precision,
        "recall": twostage.recall,
        "f1": twostage.f1,
        "train_seconds": twostage.train_seconds,
    }

    text = format_table(
        ["strategy", "train rows", "precision", "recall", "F1", "train (s)"],
        rows,
        title=(
            "Imbalance strategies vs TwoStage on DS1 (GBDT stage-2 model; "
            "paper argues TwoStage exploits dataset structure)"
        ),
    )
    return ExperimentResult(
        "imbalance", "Imbalanced-dataset mitigation comparison", text, data
    )


def _resample(sampler, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    # Clustering-controlled under-sampling costs O(rows x clusters); on a
    # full training window that is prohibitive (the very overhead argument
    # the paper makes for TwoStage), so this strategy runs on a random
    # subsample.  The reported "train rows" column reflects it.
    if isinstance(sampler, KMeansUnderSampler):
        rng = np.random.default_rng(0)
        minority = np.nonzero(y == 1)[0]
        majority = np.nonzero(y == 0)[0]
        if minority.size > 500:
            minority = rng.choice(minority, size=500, replace=False)
        if majority.size > 6000:
            majority = rng.choice(majority, size=6000, replace=False)
        keep = np.concatenate([majority, minority])
        X, y = X[keep], y[keep]
    return sampler.fit_resample(X, y)
