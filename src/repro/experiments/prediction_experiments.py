"""Experiments for the paper's prediction evaluation (Tables I-VI, Figs. 10-13)."""

from __future__ import annotations

import numpy as np

from repro.core.ecc import EccPolicySimulator
from repro.core.evaluation import (
    cabinet_prediction_error,
    prediction_cdfs,
    runtime_class_report,
    severity_level_report,
)
from repro.core.registry import MODEL_NAMES
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.utils.tables import format_table

__all__ = [
    "run_table1",
    "run_fig10",
    "run_table2",
    "run_table3",
    "run_fig11",
    "run_table4",
    "run_fig12",
    "run_fig13",
    "run_table5",
    "run_table6",
]

_PAPER_TABLE1 = {
    "random": (0.02, 0.50, 0.98, 0.50),
    "basic_a": (0.40, 0.94, 0.99, 0.98),
    "basic_b": (0.02, 0.69, 0.98, 0.24),
    "basic_c": (0.00, 0.06, 0.98, 0.76),
}


def run_table1(context: ExperimentContext) -> ExperimentResult:
    """Table I: precision/recall of the basic schemes on DS1."""
    rows = []
    data = {}
    for scheme in ("random", "basic_a", "basic_b", "basic_c"):
        result = context.basic("DS1", scheme)
        paper = _PAPER_TABLE1[scheme]
        rows.append(
            (
                scheme,
                result.precision,
                result.recall,
                result.report["non_sbe"]["precision"],
                result.report["non_sbe"]["recall"],
                f"({paper[0]:.2f}/{paper[1]:.2f})",
            )
        )
        data[scheme] = result.report
    text = format_table(
        [
            "scheme",
            "SBE precision",
            "SBE recall",
            "non-SBE precision",
            "non-SBE recall",
            "paper (P/R)",
        ],
        rows,
        title="Basic schemes on DS1",
    )
    return ExperimentResult("table1", "Precision and recall for basic schemes", text, data)


def run_fig10(context: ExperimentContext) -> ExperimentResult:
    """Fig. 10: model comparison (F1/precision/recall) on DS1."""
    rows = []
    data = {}
    basic_a = context.basic("DS1", "basic_a")
    rows.append(("basic_a", basic_a.f1, basic_a.precision, basic_a.recall))
    data["basic_a"] = basic_a.report
    for model in MODEL_NAMES:
        result = context.twostage("DS1", model)
        rows.append((model, result.f1, result.precision, result.recall))
        data[model] = result.report
    best = max(
        (name for name in MODEL_NAMES), key=lambda name: data[name]["sbe"]["f1"]
    )
    text = format_table(
        ["predictor", "F1", "precision", "recall"],
        rows,
        title=(
            "SBE-class prediction on DS1 (paper: GBDT best, F1 0.81, "
            f"recall 0.87) -- best here: {best}"
        ),
    )
    data["best_model"] = best
    return ExperimentResult("fig10", "Model comparison on DS1", text, data)


def run_table2(context: ExperimentContext) -> ExperimentResult:
    """Table II: F1 across DS1-DS3 for Basic A and all four models."""
    paper = {
        "DS1": {"basic_a": 0.56, "lr": 0.67, "gbdt": 0.81, "svm": 0.70, "nn": 0.69},
        "DS2": {"basic_a": 0.75, "lr": 0.80, "gbdt": 0.81, "svm": 0.79, "nn": 0.77},
        "DS3": {"basic_a": 0.55, "lr": 0.52, "gbdt": 0.71, "svm": 0.55, "nn": 0.51},
    }
    rows = []
    data: dict[str, dict[str, float]] = {}
    for split in context.split_names():
        row_scores = {"basic_a": context.basic(split, "basic_a").f1}
        for model in MODEL_NAMES:
            row_scores[model] = context.twostage(split, model).f1
        data[split] = row_scores
        paper_gbdt = paper.get(split, {}).get("gbdt", float("nan"))
        rows.append(
            (
                split,
                row_scores["basic_a"],
                row_scores["lr"],
                row_scores["gbdt"],
                row_scores["svm"],
                row_scores["nn"],
                f"(paper GBDT {paper_gbdt:.2f})",
            )
        )
    text = format_table(
        ["dataset", "Basic A", "LR", "GBDT", "SVM", "NN", "ref"],
        rows,
        title="F1 score for SBE occurrence prediction",
    )
    return ExperimentResult("table2", "F1 across datasets and models", text, data)


def run_table3(context: ExperimentContext) -> ExperimentResult:
    """Table III: mean training time per model (ordering is the claim)."""
    rows = []
    data = {}
    for model in MODEL_NAMES:
        seconds = [
            context.twostage(split, model).train_seconds
            for split in context.split_names()
        ]
        data[model] = float(np.mean(seconds))
        rows.append((model, float(np.mean(seconds))))
    order = [name for name, _ in sorted(data.items(), key=lambda kv: kv[1])]
    text = format_table(
        ["model", "mean training seconds"],
        rows,
        title=(
            "Mean training time (paper ordering LR << GBDT << NN << SVM; "
            f"measured ordering: {' < '.join(order)})"
        ),
    )
    data["ordering"] = order
    return ExperimentResult("table3", "Training-time comparison", text, data)


def run_fig11(context: ExperimentContext) -> ExperimentResult:
    """Fig. 11: F1 improvement over Basic A per feature group."""
    groups = {
        "Hist": {"hist", "location"},
        "TP": {"tp", "location"},
        "App": {"app", "location"},
        "All": None,
    }
    rows = []
    data: dict[str, dict[str, float]] = {}
    for split in context.split_names():
        base = context.basic(split, "basic_a").f1
        improvements = {}
        for label, include in groups.items():
            f1 = context.twostage(split, "gbdt", include=include).f1
            improvements[label] = (f1 - base) / base if base > 0 else float("nan")
        data[split] = improvements
        rows.append(
            (
                split,
                *(improvements[label] for label in groups),
            )
        )
    text = format_table(
        ["dataset", "Hist", "TP", "App", "All"],
        rows,
        title=(
            "Relative F1 improvement over Basic A by feature group "
            "(paper: All always largest)"
        ),
        float_fmt="{:+.1%}",
    )
    return ExperimentResult("fig11", "Feature-group contributions", text, data)


def run_table4(context: ExperimentContext) -> ExperimentResult:
    """Table IV: temporal/spatial temperature-power feature variants."""
    variants = {
        "Cur": {"exclude": {"tp_prev", "tp_nei"}},
        "CurPrev": {"exclude": {"tp_nei"}},
        "CurNei": {"exclude": {"tp_prev"}},
        "CurPrevNei": {"exclude": None},
    }
    paper = {
        "Cur": (0.764, 0.865, 0.820),
        "CurPrev": (0.801, 0.830, 0.815),
        "CurNei": (0.815, 0.838, 0.826),
        "CurPrevNei": (0.807, 0.829, 0.818),
    }
    rows = []
    data = {}
    for label, kwargs in variants.items():
        result = context.twostage("DS1", "gbdt", exclude=kwargs["exclude"])
        rows.append(
            (
                label,
                result.precision,
                result.recall,
                result.f1,
                f"(paper F1 {paper[label][2]:.3f})",
            )
        )
        data[label] = {
            "precision": result.precision,
            "recall": result.recall,
            "f1": result.f1,
        }
    spread = max(v["f1"] for v in data.values()) - min(v["f1"] for v in data.values())
    text = format_table(
        ["feature set", "precision", "recall", "F1", "ref"],
        rows,
        title=(
            "Temp/power feature variants on DS1 (paper: all within ~0.01; "
            f"measured spread {spread:.3f})"
        ),
    )
    data["f1_spread"] = spread
    return ExperimentResult("table4", "Temperature/power feature variants", text, data)


def run_fig12(context: ExperimentContext) -> ExperimentResult:
    """Fig. 12: F1 decrement from removing history feature sets."""
    ablations = {
        "no_global": {"hist_global"},
        "no_local": {"hist_local"},
        "no_before": {"hist_before"},
        "no_yesterday": {"hist_yesterday"},
        "no_today": {"hist_today"},
    }
    rows = []
    data: dict[str, dict[str, float]] = {}
    for split in context.split_names():
        full = context.twostage(split, "gbdt").f1
        decrements = {}
        for label, exclude in ablations.items():
            f1 = context.twostage(split, "gbdt", exclude=exclude).f1
            decrements[label] = (f1 - full) / full if full > 0 else float("nan")
        data[split] = decrements
        rows.append((split, *(decrements[label] for label in ablations)))
    text = format_table(
        ["dataset", *ablations.keys()],
        rows,
        title=(
            "Relative F1 change when removing history features "
            "(paper: local and recent history matter most)"
        ),
        float_fmt="{:+.1%}",
    )
    return ExperimentResult("fig12", "History-feature ablations", text, data)


def run_fig13(context: ExperimentContext) -> ExperimentResult:
    """Fig. 13: spatial robustness of the prediction at the cabinet level."""
    result = context.twostage("DS1", "gbdt")
    machine = context.trace.machine
    errors = cabinet_prediction_error(result, machine).ravel()
    cdfs = prediction_cdfs(result, machine)
    inside = float(((errors >= -15) & (errors <= 13)).mean())
    rows = [
        ("ground truth", cdfs["ground_truth"].sum()),
        ("prediction", cdfs["prediction"].sum()),
        ("true positives", cdfs["true_positives"].sum()),
    ]
    text = format_table(
        ["series", "total SBE occurrences"],
        rows,
        title=(
            "Cabinet-level prediction vs ground truth; per-cabinet error in "
            f"[-15, 13] for {inside:.0%} of cabinets (paper: >95%)"
        ),
        float_fmt="{:.0f}",
    )
    return ExperimentResult(
        "fig13",
        "Spatial robustness",
        text,
        {"cabinet_errors": errors, "cdfs": cdfs, "fraction_within_band": inside},
    )


def run_table5(context: ExperimentContext) -> ExperimentResult:
    """Table V: prediction quality for short- vs long-running apps."""
    result = context.twostage("DS1", "gbdt")
    report = runtime_class_report(result)
    paper = {"all": 0.81, "short": 0.84, "long": 0.92}
    rows = [
        (
            name,
            report[name]["precision"],
            report[name]["recall"],
            report[name]["f1"],
            f"(paper F1 {paper[name]:.2f})",
        )
        for name in ("all", "short", "long")
    ]
    text = format_table(
        ["runtime class", "precision", "recall", "F1", "ref"],
        rows,
        title="Prediction quality by application runtime (DS1, GBDT)",
    )
    return ExperimentResult("table5", "Short- vs long-running applications", text, report)


def run_table6(context: ExperimentContext) -> ExperimentResult:
    """Table VI: correctly classified SBE runs per severity level."""
    result = context.twostage("DS1", "gbdt")
    report = severity_level_report(result)
    paper = {"light": 0.74, "moderate": 0.88, "severe": 0.93, "extreme": 0.95}
    rows = [
        (level, report[level], f"(paper {paper[level]:.0%})")
        for level in ("light", "moderate", "severe", "extreme")
    ]
    text = format_table(
        ["severity", "correctly classified", "ref"],
        rows,
        title="SBE-affected runs correctly classified by severity (DS1, GBDT)",
        float_fmt="{:.0%}",
    )
    return ExperimentResult("table6", "Effect of SBE severity", text, report)


def run_ecc_policy(context: ExperimentContext) -> ExperimentResult:
    """Discussion §VIII: prediction-driven dynamic ECC accounting."""
    result = context.twostage("DS1", "gbdt")
    simulator = EccPolicySimulator()
    reports = simulator.compare_policies(result)
    rows = [
        (
            r.policy,
            r.ecc_off_fraction,
            r.overhead_saved_core_hours,
            float(r.exposed_sbe_samples),
            r.net_saved_core_hours,
        )
        for r in reports
    ]
    text = format_table(
        ["policy", "ECC-off fraction", "saved core-h", "exposed SBEs", "net saved core-h"],
        rows,
        title="Dynamic ECC protection driven by the TwoStage predictor (DS1)",
    )
    return ExperimentResult(
        "ecc", "Prediction-driven ECC scheduling", text, {r.policy: r for r in reports}
    )
