"""Shared, cached context for experiment drivers.

Simulating a trace takes tens of seconds and training a GBDT tens more;
many experiments share both.  :class:`ExperimentContext` memoizes the
trace (also on disk, keyed by preset + seed), the feature matrix, the
pipeline with preset-appropriate splits, and every ``(split, model,
feature-selection)`` evaluation, so a full sweep over all experiments
pays each cost once.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

from repro.core.pipeline import PredictionPipeline, SplitResult
from repro.experiments.presets import preset_config, split_plan
from repro.features.builder import FeatureMatrix, build_features
from repro.features.splits import DatasetSplit, make_paper_splits
from repro.telemetry.simulator import simulate_trace
from repro.telemetry.trace import Trace
from repro.utils.errors import DegradedDataWarning, ReproError

__all__ = ["ExperimentContext", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Trace cache directory (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-gpu-errors"


class ExperimentContext:
    """Caches the trace, features, pipeline, and evaluations for a preset."""

    def __init__(
        self,
        preset: str = "default",
        *,
        cache_dir: Path | str | None = None,
        use_disk_cache: bool = True,
    ) -> None:
        self.preset = preset
        self._cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self._use_disk_cache = use_disk_cache
        self._trace: Trace | None = None
        self._features: FeatureMatrix | None = None
        self._pipeline: PredictionPipeline | None = None
        self._results: dict[tuple, SplitResult] = {}

    # ------------------------------------------------------------------
    @property
    def trace(self) -> Trace:
        """The simulated trace (from memory, disk cache, or a fresh run).

        A corrupt or truncated cache entry is never fatal: the failure is
        reported as a :class:`DegradedDataWarning` and the trace is
        re-simulated (and the cache rewritten) instead.
        """
        if self._trace is None:
            config = preset_config(self.preset)
            cache_path = self._cache_dir / f"trace-{self.preset}-seed{config.seed}"
            if self._use_disk_cache and cache_path.with_suffix(".npz").exists():
                try:
                    self._trace = Trace.load(cache_path)
                except ReproError as exc:
                    warnings.warn(
                        f"trace cache is unreadable ({exc}); re-simulating",
                        DegradedDataWarning,
                        stacklevel=2,
                    )
            if self._trace is None:
                self._trace = simulate_trace(config)
                if self._use_disk_cache:
                    self._trace.save(cache_path)
        return self._trace

    @property
    def features(self) -> FeatureMatrix:
        """The feature matrix for the trace."""
        if self._features is None:
            self._features = build_features(self.trace)
        return self._features

    @property
    def pipeline(self) -> PredictionPipeline:
        """Pipeline with the preset's DS1-DS3 splits."""
        if self._pipeline is None:
            self._pipeline = self.make_pipeline(self.features)
        return self._pipeline

    def preset_splits(self) -> list[DatasetSplit]:
        """This preset's DS1-DS3 sliding splits (validated against the trace)."""
        plan = split_plan(self.preset)
        return make_paper_splits(
            train_days=plan["train_days"],
            test_days=plan["test_days"],
            offsets_days=tuple(plan["offsets"]),
            duration_days=self.trace.config.duration_days,
        )

    def make_pipeline(self, features: FeatureMatrix) -> PredictionPipeline:
        """A pipeline over ``features`` using this preset's split plan.

        Used by the degradation experiment to evaluate alternative
        (e.g. fault-injected) feature matrices under the exact splits of
        the cached :attr:`pipeline`.
        """
        return PredictionPipeline(features, self.preset_splits())

    # ------------------------------------------------------------------
    def twostage(
        self,
        split: str,
        model: str = "gbdt",
        *,
        include: set[str] | None = None,
        exclude: set[str] | None = None,
        random_state: int = 0,
    ) -> SplitResult:
        """Memoized TwoStage evaluation for one configuration."""
        key = (
            "twostage",
            split,
            model,
            tuple(sorted(include)) if include else None,
            tuple(sorted(exclude)) if exclude else None,
            random_state,
        )
        if key not in self._results:
            self._results[key] = self.pipeline.evaluate_twostage(
                split,
                model,
                include=include,
                exclude=exclude,
                random_state=random_state,
            )
        return self._results[key]

    def basic(self, split: str, scheme: str, *, random_state: int = 0) -> SplitResult:
        """Memoized baseline-scheme evaluation."""
        key = ("basic", split, scheme, random_state)
        if key not in self._results:
            self._results[key] = self.pipeline.evaluate_basic(
                split, scheme, random_state=random_state
            )
        return self._results[key]

    def split_names(self) -> list[str]:
        """Names of the configured splits (DS1, DS2, ...)."""
        return [split.name for split in self.pipeline.splits]
