"""Shared, cached context for experiment drivers.

Simulating a trace takes tens of seconds and training a GBDT tens more;
many experiments share both.  :class:`ExperimentContext` memoizes the
trace and the feature matrix — in memory and on disk through the
content-addressed :class:`~repro.parallel.cache.ContentCache`, keyed by
config digest + code schema version so concurrent workers and config
changes can never collide — plus the pipeline with preset-appropriate
splits and every ``(split, model, feature-selection)`` evaluation, so a
full sweep over all experiments pays each cost once.

With ``jobs > 1`` the context simulates its trace as row-shards on a
process pool (:func:`~repro.parallel.simulate.simulate_trace_sharded`);
the result is bit-identical to the serial run, so the parallelism is
invisible to every consumer.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.pipeline import PredictionPipeline, SplitResult
from repro.experiments.presets import preset_config, split_plan
from repro.features.builder import (
    FeatureMatrix,
    build_features,
    build_features_from_store,
)
from repro.features.splits import DatasetSplit, make_paper_splits
from repro.parallel.cache import ContentCache
from repro.parallel.simulate import simulate_trace_sharded
from repro.telemetry.simulator import simulate_trace
from repro.telemetry.trace import Trace

__all__ = ["ExperimentContext", "default_cache_dir"]

#: Feature-builder parameters recorded in the feature-cache key.  Must
#: match the defaults of :func:`repro.features.builder.build_features`.
_FEATURE_PARAMS = {"top_k_apps": 16, "sanitize": False}


def default_cache_dir() -> Path:
    """Trace cache directory (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-gpu-errors"


class ExperimentContext:
    """Caches the trace, features, pipeline, and evaluations for a preset."""

    def __init__(
        self,
        preset: str = "default",
        *,
        cache_dir: Path | str | None = None,
        use_disk_cache: bool = True,
        jobs: int = 1,
        strict: bool = False,
        segmented: bool = False,
    ) -> None:
        self.preset = preset
        self.jobs = max(1, int(jobs))
        #: Escalate degraded-data repairs into typed errors (``--strict``).
        self.strict = bool(strict)
        #: Produce/consume the trace through the segmented on-disk store
        #: (out of core) instead of one monolithic archive.
        self.segmented = bool(segmented)
        self._cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self._cache = ContentCache(self._cache_dir)
        self._use_disk_cache = use_disk_cache
        self._trace: Trace | None = None
        self._features: FeatureMatrix | None = None
        self._pipeline: PredictionPipeline | None = None
        self._results: dict[tuple, SplitResult] = {}
        self._store = None

    # ------------------------------------------------------------------
    @property
    def cache(self) -> ContentCache:
        """The content-addressed disk cache backing this context."""
        return self._cache

    @property
    def trace(self) -> Trace:
        """The simulated trace (from memory, disk cache, or a fresh run).

        A corrupt or truncated cache entry is never fatal: the failure is
        reported as a :class:`~repro.utils.errors.DegradedDataWarning`
        and the trace is re-simulated (and the cache rewritten) instead.
        """
        if self._trace is None:
            if self.segmented:
                self._trace = self.store.load_trace(strict=self.strict)
                return self._trace
            config = preset_config(self.preset)
            if self._use_disk_cache:
                self._trace = self._cache.load_trace(config)
            if self._trace is None:
                if self.jobs > 1:
                    self._trace = simulate_trace_sharded(
                        config, shards=self.jobs, jobs=self.jobs
                    )
                else:
                    self._trace = simulate_trace(config)
                if self._use_disk_cache:
                    self._cache.store_trace(config, self._trace)
        return self._trace

    @property
    def store(self):
        """The segmented trace store (``segmented=True`` contexts only).

        A committed store under the cache directory is verified and — in
        non-strict mode — healed; an uncommitted or absent one is
        (re)built by the crash-safe pipeline, resuming any journaled
        segments.  The store content is bit-identical to :attr:`trace`
        from a serial run, so consumers may mix the two freely.
        """
        from repro.store import SegmentedTraceStore, simulate_trace_to_store
        from repro.utils.errors import ValidationError

        if not self.segmented:
            raise ValidationError(
                "this context is not segmented; pass segmented=True"
            )
        if self._store is None:
            config = preset_config(self.preset)
            root = self._cache.store_path(config)
            store = SegmentedTraceStore(root)
            if store.is_committed:
                store.recover(strict=self.strict)
            else:
                store = simulate_trace_to_store(
                    config, root, jobs=self.jobs, resume=root.exists()
                )
            self._store = store
        return self._store

    @property
    def features(self) -> FeatureMatrix:
        """The feature matrix for the trace (content-cached on disk)."""
        if self._features is None:
            config = preset_config(self.preset)
            if self._use_disk_cache:
                self._features = self._cache.load_features(
                    config, **_FEATURE_PARAMS
                )
            if self._features is None:
                if self.segmented:
                    # Out of core: never materializes the full trace.
                    self._features = build_features_from_store(
                        self.store,
                        top_k_apps=_FEATURE_PARAMS["top_k_apps"],
                        strict=self.strict,
                    )
                else:
                    self._features = build_features(self.trace)
                if self._use_disk_cache:
                    self._cache.store_features(
                        config, self._features, **_FEATURE_PARAMS
                    )
        return self._features

    @property
    def pipeline(self) -> PredictionPipeline:
        """Pipeline with the preset's DS1-DS3 splits."""
        if self._pipeline is None:
            self._pipeline = self.make_pipeline(self.features)
        return self._pipeline

    def preset_splits(self) -> list[DatasetSplit]:
        """This preset's DS1-DS3 sliding splits (validated against the trace)."""
        plan = split_plan(self.preset)
        return make_paper_splits(
            train_days=plan["train_days"],
            test_days=plan["test_days"],
            offsets_days=tuple(plan["offsets"]),
            duration_days=self.trace.config.duration_days,
        )

    def make_pipeline(self, features: FeatureMatrix) -> PredictionPipeline:
        """A pipeline over ``features`` using this preset's split plan.

        Used by the degradation experiment to evaluate alternative
        (e.g. fault-injected) feature matrices under the exact splits of
        the cached :attr:`pipeline`.
        """
        return PredictionPipeline(features, self.preset_splits())

    # ------------------------------------------------------------------
    def twostage(
        self,
        split: str,
        model: str = "gbdt",
        *,
        include: set[str] | None = None,
        exclude: set[str] | None = None,
        random_state: int = 0,
    ) -> SplitResult:
        """Memoized TwoStage evaluation for one configuration."""
        key = (
            "twostage",
            split,
            model,
            tuple(sorted(include)) if include else None,
            tuple(sorted(exclude)) if exclude else None,
            random_state,
        )
        if key not in self._results:
            self._results[key] = self.pipeline.evaluate_twostage(
                split,
                model,
                include=include,
                exclude=exclude,
                random_state=random_state,
            )
        return self._results[key]

    def basic(self, split: str, scheme: str, *, random_state: int = 0) -> SplitResult:
        """Memoized baseline-scheme evaluation."""
        key = ("basic", split, scheme, random_state)
        if key not in self._results:
            self._results[key] = self.pipeline.evaluate_basic(
                split, scheme, random_state=random_state
            )
        return self._results[key]

    def split_names(self) -> list[str]:
        """Names of the configured splits (DS1, DS2, ...)."""
        return [split.name for split in self.pipeline.splits]
