"""Experiments for the paper's characterization figures (Figs. 1-8)."""

from __future__ import annotations

import numpy as np

from repro.analysis.characterization import (
    app_sbe_skew,
    cabinet_grids,
    offender_day_coverage,
    period_distributions,
    run_profile_pairs,
    utilization_correlations,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.utils.tables import format_grid, format_table

__all__ = [
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
]


def run_fig1(context: ExperimentContext) -> ExperimentResult:
    """Fig. 1: non-uniform cabinet distribution of SBE offender nodes."""
    grids = cabinet_grids(context.trace)
    coverage = offender_day_coverage(context.trace)
    text = format_grid(grids.offender_nodes, title="SBE offender nodes per cabinet")
    text += (
        f"\noffenders erring on <20% of days: {(coverage < 0.2).mean():.0%} "
        "(paper: ~80%)"
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Offender-node distribution at the cabinet level",
        text=text,
        data={
            "grid": grids.offender_nodes,
            "day_coverage": coverage,
            "frac_offenders_lt20pct_days": float((coverage < 0.2).mean()),
        },
    )


def run_fig2(context: ExperimentContext) -> ExperimentResult:
    """Fig. 2: non-uniform cabinet distribution of SBE-affected apruns."""
    grids = cabinet_grids(context.trace)
    text = format_grid(grids.affected_apruns, title="SBE-affected aprun samples per cabinet")
    return ExperimentResult(
        experiment_id="fig2",
        title="SBE-affected application runs at the cabinet level",
        text=text,
        data={"grid": grids.affected_apruns},
    )


def run_fig3(context: ExperimentContext) -> ExperimentResult:
    """Fig. 3: a small set of applications holds most SBEs."""
    skew = app_sbe_skew(context.trace)
    quintiles = np.linspace(0.2, 1.0, 5)
    rows = []
    n = skew.cumulative_share.size
    for q in quintiles:
        idx = max(1, int(np.ceil(q * n))) - 1
        frac_row = skew.affected_run_fraction[: idx + 1].mean()
        rows.append((f"top {q:.0%}", skew.cumulative_share[idx], frac_row))
    text = format_table(
        ["SBE-affected apps", "cumulative SBE share", "mean affected-run fraction"],
        rows,
        title=(
            f"{skew.num_affected}/{skew.num_apps} apps SBE-affected; "
            f"top 20% hold {skew.top20_share:.0%} of SBEs (paper: >90%)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Workload and GPU error distribution",
        text=text,
        data={
            "cumulative_share": skew.cumulative_share,
            "affected_run_fraction": skew.affected_run_fraction,
            "top20_share": skew.top20_share,
        },
    )


def run_fig4(context: ExperimentContext) -> ExperimentResult:
    """Fig. 4: SBE rate vs GPU utilization rank correlations."""
    corr = utilization_correlations(context.trace)
    text = format_table(
        ["axis", "spearman (measured)", "paper"],
        [
            ("GPU core-hours", corr["core_hours"], 0.89),
            ("GPU memory", corr["memory"], 0.70),
        ],
        title="Normalized SBE count vs utilization (SBE-affected apps)",
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="SBE count vs GPU utilization",
        text=text,
        data=dict(corr),
    )


def run_fig5(context: ExperimentContext) -> ExperimentResult:
    """Fig. 5: cumulative temperature/power grids; weak link to offenders."""
    grids = cabinet_grids(context.trace)
    text = format_grid(grids.mean_temperature, title="Mean GPU temperature per cabinet (C)")
    text += "\n" + format_grid(grids.mean_power, title="Mean GPU power per cabinet (W)")
    text += (
        f"\nspearman(temp, offender) = {grids.temp_sbe_spearman:.2f} (paper 0.07); "
        f"spearman(power, offender) = {grids.power_sbe_spearman:.2f} (weak)"
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Temperature and power distribution over the machine",
        text=text,
        data={
            "temperature_grid": grids.mean_temperature,
            "power_grid": grids.mean_power,
            "temp_sbe_spearman": grids.temp_sbe_spearman,
            "power_sbe_spearman": grids.power_sbe_spearman,
        },
    )


def _period_result(
    context: ExperimentContext, experiment_id: str, quantity: str
) -> ExperimentResult:
    dist = period_distributions(context.trace)
    if quantity == "temp":
        free, affected = dist.temp_free, dist.temp_affected
        elevation, unit, paper = dist.temp_elevation, "C", ">3 C"
        title = "Temperature of offender nodes: SBE-free vs SBE-affected periods"
    else:
        free, affected = dist.power_free, dist.power_affected
        elevation, unit, paper = dist.power_elevation, "W", ">15 W"
        title = "Power of offender nodes: SBE-free vs SBE-affected periods"
    rows = [
        ("SBE-free", free.mean(), free.std(), len(free)),
        ("SBE-affected", affected.mean(), affected.std(), len(affected)),
    ]
    text = format_table(
        ["period", f"mean ({unit})", f"std ({unit})", "samples"],
        rows,
        title=f"{title}; elevation {elevation:+.1f} {unit} (paper {paper})",
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        text=text,
        data={
            "free_mean": float(free.mean()),
            "affected_mean": float(affected.mean()),
            "elevation": elevation,
            "free": free,
            "affected": affected,
        },
    )


def run_fig6(context: ExperimentContext) -> ExperimentResult:
    """Fig. 6: offender-node temperature, SBE-free vs SBE-affected."""
    return _period_result(context, "fig6", "temp")


def run_fig7(context: ExperimentContext) -> ExperimentResult:
    """Fig. 7: offender-node power, SBE-free vs SBE-affected."""
    return _period_result(context, "fig7", "power")


def run_fig8(context: ExperimentContext) -> ExperimentResult:
    """Fig. 8: same app, same node, different runs -> different profiles."""
    trace = context.trace
    node = trace.config.record_nodes[0]
    profiles = run_profile_pairs(trace, node, max_pairs=2)
    rows = []
    for i, profile in enumerate(profiles, start=1):
        rows.append(
            (
                f"run {i}",
                float(profile["gpu_temp"].mean()),
                float(profile["gpu_temp"].max()),
                float(profile["gpu_power"].mean()),
                float(profile["slot_avg_temp"].mean()),
                float(profile["cpu_temp"].mean()),
            )
        )
    divergence = 0.0
    if len(profiles) >= 2:
        shared = min(profiles[0]["gpu_temp"].size, profiles[1]["gpu_temp"].size)
        divergence = float(
            np.abs(
                profiles[0]["gpu_temp"][:shared] - profiles[1]["gpu_temp"][:shared]
            ).mean()
        )
    text = format_table(
        ["run", "temp mean", "temp max", "power mean", "slot avg temp", "cpu temp"],
        rows,
        title=(
            f"Repeated runs of the same app on node {node}; mean absolute "
            f"temperature divergence between runs: {divergence:.2f} C"
        ),
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Temperature/power profiles across repeated runs",
        text=text,
        data={"profiles": profiles, "temperature_divergence": divergence},
    )
