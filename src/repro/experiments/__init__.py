"""Per-figure/table experiment drivers.

Each paper artifact (Figs. 1-8, 10-13; Tables I-VI) has a module exposing
``run(context) -> ExperimentResult``; the registry maps experiment ids
(``"fig1"``, ``"table2"``, ...) to them.  :class:`ExperimentContext`
simulates and caches the shared trace, features, pipeline, and trained
models so a full sweep pays for each expensive step once.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment, run_experiments
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.experiments.presets import PRESETS, preset_config

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "run_experiments",
    "ExperimentResult",
    "ExperimentContext",
    "PRESETS",
    "preset_config",
]
