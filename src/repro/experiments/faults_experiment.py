"""Degradation experiment: prediction quality vs telemetry fault intensity.

Sweeps the fault-injection master intensity, pushing each degraded trace
through the sanitizer and the full feature/TwoStage pipeline, and reports
the F1 curve against the clean-trace baseline.  The claim under test is
*graceful degradation*: at intensity 0 the pipeline is bit-identical to
the paper reproduction, and at moderate intensity it still completes with
a bounded F1 drop instead of crashing, with the quarantined-span fraction
reported alongside.

The sweep points are independent cells, so with ``jobs > 1`` they fan out
over a process pool (:class:`~repro.parallel.runner.ParallelRunner`).
Every cell is fully seeded and the runner preserves input order, so the
parallel sweep is cell-for-cell identical to the serial one — the parity
tests in ``tests/parallel/test_parallel_runner.py`` enforce exactly that.
"""

from __future__ import annotations

import warnings

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.experiments.presets import split_plan
from repro.faults.injectors import FaultSpec, inject_faults
from repro.faults.sanitizer import sanitize_trace
from repro.features.builder import build_features
from repro.features.splits import make_paper_splits
from repro.core.pipeline import PredictionPipeline
from repro.parallel.runner import ParallelRunner
from repro.telemetry.trace import Trace
from repro.utils.errors import DegradedDataWarning, ReproError
from repro.utils.tables import format_table

__all__ = ["run_faults", "evaluate_fault_point", "DEFAULT_INTENSITIES"]

#: Sweep points: clean baseline, mild, moderate (the acceptance gate),
#: and severe.
DEFAULT_INTENSITIES = (0.0, 0.1, 0.25, 0.5)


def evaluate_fault_point(
    args: tuple[Trace, str, float, int, str, str],
) -> dict:
    """Evaluate one nonzero-intensity sweep cell (picklable worker).

    Takes ``(trace, preset, intensity, seed, model, split)`` as one tuple
    so it can be mapped directly over a process pool.  Everything inside
    is seeded (fault injection by ``seed``, training by ``random_state=0``),
    so the returned point is identical no matter which process runs it.
    The ``drop`` against the clean baseline is filled in by the caller,
    which owns the baseline evaluation.
    """
    trace, preset, intensity, seed, model, split = args
    spec = FaultSpec(intensity=intensity, seed=seed)
    faulty, fault_log = inject_faults(trace, spec)
    point = {
        "intensity": intensity,
        "fault_rows": fault_log.rows_affected(),
        "fault_summary": fault_log.summary(),
        "error": None,
    }
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedDataWarning)
            repaired, san_report = sanitize_trace(faulty)
        features = build_features(repaired)
        plan = split_plan(preset)
        pipeline = PredictionPipeline(
            features,
            make_paper_splits(
                train_days=plan["train_days"],
                test_days=plan["test_days"],
                offsets_days=tuple(plan["offsets"]),
                duration_days=trace.config.duration_days,
            ),
        )
        result = pipeline.evaluate_twostage(split, model, random_state=0)
    except ReproError as exc:
        # Graceful even past the design envelope: report the failure as
        # a data point instead of aborting the sweep.
        point.update(
            {
                "f1": float("nan"),
                "precision": float("nan"),
                "recall": float("nan"),
                "rows_in": faulty.num_samples,
                "rows_out": 0,
                "quarantined_fraction": 1.0,
                "error": str(exc),
            }
        )
        return point
    point.update(
        {
            "f1": result.f1,
            "precision": result.precision,
            "recall": result.recall,
            "rows_in": san_report.total_rows,
            "rows_out": san_report.rows_out,
            "quarantined_fraction": san_report.quarantined_fraction,
        }
    )
    return point


def run_faults(
    context: ExperimentContext,
    *,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    seed: int = 0,
    model: str = "gbdt",
    split: str = "DS1",
    jobs: int | None = None,
) -> ExperimentResult:
    """Run the fault-intensity sweep and render the degradation curve.

    ``jobs`` defaults to the context's job count; each nonzero intensity
    is one cell on the pool, the clean baseline stays in-process (it
    reuses the context's cached evaluation).
    """
    trace = context.trace
    baseline = context.twostage(split, model)
    if jobs is None:
        jobs = context.jobs

    swept = [i for i in intensities if i != 0.0]
    cells = [(trace, context.preset, i, seed, model, split) for i in swept]
    swept_points = ParallelRunner(max(1, jobs)).map(evaluate_fault_point, cells)
    by_intensity = dict(zip(swept, swept_points))

    rows = []
    curve = []
    for intensity in intensities:
        if intensity == 0.0:
            # Clean path: verify the sanitizer is a no-op, reuse the
            # cached baseline evaluation (bit-identical reproduction).
            _, san_report = sanitize_trace(trace)
            point = {
                "intensity": 0.0,
                "f1": baseline.f1,
                "precision": baseline.precision,
                "recall": baseline.recall,
                "drop": 0.0,
                "rows_in": san_report.total_rows,
                "rows_out": san_report.rows_out,
                "quarantined_fraction": san_report.quarantined_fraction,
                "sanitizer_noop": san_report.clean,
                "fault_rows": 0,
                "error": None,
            }
        else:
            point = by_intensity[intensity]
            if point["error"] is not None:
                point["drop"] = float("nan")
                curve.append(point)
                rows.append(
                    (
                        f"{intensity:.2f}",
                        "-",
                        "-",
                        "-",
                        "-",
                        f"failed: {point['error']}",
                    )
                )
                continue
            point["drop"] = baseline.f1 - point["f1"]
        curve.append(point)
        rows.append(
            (
                f"{point['intensity']:.2f}",
                point["f1"],
                point["drop"],
                point["quarantined_fraction"],
                point["rows_out"],
                "baseline" if point["intensity"] == 0.0 else "",
            )
        )

    ok_points = [p for p in curve if p["error"] is None and p["intensity"] > 0]
    max_drop = max((p["drop"] for p in ok_points), default=0.0)
    moderate = [p for p in ok_points if abs(p["intensity"] - 0.25) < 1e-9]
    text = format_table(
        ["intensity", "f1", "f1_drop", "quarantined", "rows", "note"],
        rows,
    )
    text += (
        f"\nclean-trace sanitizer no-op: {curve[0]['sanitizer_noop']}; "
        f"baseline {model} F1 on {split}: {baseline.f1:.3f}; "
        f"max F1 drop over sweep: {max_drop:.3f}"
    )
    return ExperimentResult(
        experiment_id="faults",
        title="Telemetry fault-injection degradation curve",
        text=text,
        data={
            "split": split,
            "model": model,
            "seed": seed,
            "baseline_f1": baseline.f1,
            "curve": curve,
            "max_drop": max_drop,
            "moderate_drop": moderate[0]["drop"] if moderate else None,
            "clean_noop": curve[0]["sanitizer_noop"],
        },
    )
