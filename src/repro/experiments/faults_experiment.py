"""Degradation experiment: prediction quality vs telemetry fault intensity.

Sweeps the fault-injection master intensity, pushing each degraded trace
through the sanitizer and the full feature/TwoStage pipeline, and reports
the F1 curve against the clean-trace baseline.  The claim under test is
*graceful degradation*: at intensity 0 the pipeline is bit-identical to
the paper reproduction, and at moderate intensity it still completes with
a bounded F1 drop instead of crashing, with the quarantined-span fraction
reported alongside.
"""

from __future__ import annotations

import warnings

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.faults.injectors import FaultSpec, inject_faults
from repro.faults.sanitizer import sanitize_trace
from repro.features.builder import build_features
from repro.utils.errors import DegradedDataWarning, ReproError
from repro.utils.tables import format_table

__all__ = ["run_faults", "DEFAULT_INTENSITIES"]

#: Sweep points: clean baseline, mild, moderate (the acceptance gate),
#: and severe.
DEFAULT_INTENSITIES = (0.0, 0.1, 0.25, 0.5)


def run_faults(
    context: ExperimentContext,
    *,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    seed: int = 0,
    model: str = "gbdt",
    split: str = "DS1",
) -> ExperimentResult:
    """Run the fault-intensity sweep and render the degradation curve."""
    trace = context.trace
    baseline = context.twostage(split, model)
    rows = []
    curve = []
    for intensity in intensities:
        if intensity == 0.0:
            # Clean path: verify the sanitizer is a no-op, reuse the
            # cached baseline evaluation (bit-identical reproduction).
            _, san_report = sanitize_trace(trace)
            result = baseline
            point = {
                "intensity": 0.0,
                "f1": result.f1,
                "precision": result.precision,
                "recall": result.recall,
                "drop": 0.0,
                "rows_in": san_report.total_rows,
                "rows_out": san_report.rows_out,
                "quarantined_fraction": san_report.quarantined_fraction,
                "sanitizer_noop": san_report.clean,
                "fault_rows": 0,
                "error": None,
            }
        else:
            spec = FaultSpec(intensity=intensity, seed=seed)
            faulty, fault_log = inject_faults(trace, spec)
            point = {
                "intensity": intensity,
                "fault_rows": fault_log.rows_affected(),
                "fault_summary": fault_log.summary(),
                "error": None,
            }
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DegradedDataWarning)
                    repaired, san_report = sanitize_trace(faulty)
                features = build_features(repaired)
                pipeline = context.make_pipeline(features)
                result = pipeline.evaluate_twostage(split, model, random_state=0)
            except ReproError as exc:
                # Graceful even past the design envelope: report the
                # failure as a data point instead of aborting the sweep.
                point.update(
                    {
                        "f1": float("nan"),
                        "precision": float("nan"),
                        "recall": float("nan"),
                        "drop": float("nan"),
                        "rows_in": faulty.num_samples,
                        "rows_out": 0,
                        "quarantined_fraction": 1.0,
                        "error": str(exc),
                    }
                )
                curve.append(point)
                rows.append((f"{intensity:.2f}", "-", "-", "-", "-", f"failed: {exc}"))
                continue
            point.update(
                {
                    "f1": result.f1,
                    "precision": result.precision,
                    "recall": result.recall,
                    "drop": baseline.f1 - result.f1,
                    "rows_in": san_report.total_rows,
                    "rows_out": san_report.rows_out,
                    "quarantined_fraction": san_report.quarantined_fraction,
                }
            )
        curve.append(point)
        rows.append(
            (
                f"{point['intensity']:.2f}",
                point["f1"],
                point["drop"],
                point["quarantined_fraction"],
                point["rows_out"],
                "baseline" if point["intensity"] == 0.0 else "",
            )
        )

    ok_points = [p for p in curve if p["error"] is None and p["intensity"] > 0]
    max_drop = max((p["drop"] for p in ok_points), default=0.0)
    moderate = [p for p in ok_points if abs(p["intensity"] - 0.25) < 1e-9]
    text = format_table(
        ["intensity", "f1", "f1_drop", "quarantined", "rows", "note"],
        rows,
    )
    text += (
        f"\nclean-trace sanitizer no-op: {curve[0]['sanitizer_noop']}; "
        f"baseline {model} F1 on {split}: {baseline.f1:.3f}; "
        f"max F1 drop over sweep: {max_drop:.3f}"
    )
    return ExperimentResult(
        experiment_id="faults",
        title="Telemetry fault-injection degradation curve",
        text=text,
        data={
            "split": split,
            "model": model,
            "seed": seed,
            "baseline_f1": baseline.f1,
            "curve": curve,
            "max_drop": max_drop,
            "moderate_drop": moderate[0]["drop"] if moderate else None,
            "clean_noop": curve[0]["sanitizer_noop"],
        },
    )
