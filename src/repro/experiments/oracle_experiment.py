"""Oracle-per-cabinet model choice (paper Section VII-D1).

The paper validates that TwoStage+GBDT is spatially robust by comparing
it against an oracle allowed to pick the best model *per cabinet*: the
oracle improved overall F1 by only 0.01/0.02/0.001 on the three
datasets, so one global GBDT suffices.  This experiment reproduces that
comparison on DS1 using all four models.
"""

from __future__ import annotations

from repro.core.evaluation import oracle_model_analysis
from repro.core.registry import MODEL_NAMES
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.utils.tables import format_table

__all__ = ["run_oracle"]


def run_oracle(context: ExperimentContext) -> ExperimentResult:
    """Compare the per-cabinet oracle against each global model on DS1."""
    results = {model: context.twostage("DS1", model) for model in MODEL_NAMES}
    analysis = oracle_model_analysis(results, context.trace.machine)

    rows = [
        (model, analysis["global_f1"][model]) for model in MODEL_NAMES
    ]
    rows.append(("oracle (per cabinet)", analysis["oracle_f1"]))
    wins = analysis["winning_model_per_cabinet"]
    counts = {model: 0 for model in MODEL_NAMES}
    for winner in wins.values():
        counts[winner] += 1
    text = format_table(
        ["predictor", "F1 (DS1)"],
        rows,
        title=(
            f"Oracle gain over best global model "
            f"({analysis['best_global_model']}): "
            f"{analysis['oracle_gain']:+.3f} (paper: +0.01); cabinet wins: "
            + ", ".join(f"{m}={counts[m]}" for m in MODEL_NAMES)
        ),
    )
    return ExperimentResult(
        "oracle", "Oracle per-cabinet model selection", text, analysis
    )
