"""Crash-safe, resumable simulation straight into a segmented store.

:func:`simulate_trace_to_store` plans row-aligned spans, simulates them
(in-process or on a process pool), and commits each result to disk as a
checksummed segment the moment it is ready — journaling every commit —
so at most one segment's work is ever lost to a crash.  The manifest is
written last: only a store that holds every verified segment ever claims
to be complete.

Resume (``resume=True``) re-verifies each journaled segment's checksum
against the bytes on disk, re-simulates any that fail (a torn commit
whose rename survived but whose data did not), and simulates only the
spans with no durable segment.  Because every random draw is keyed by a
stable entity, the resumed store is bit-identical to an uninterrupted
one — ``tools/check_determinism.py`` kills a run mid-flight and checks
exactly that.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.parallel.simulate import iter_shard_results
from repro.store.diskfaults import WriteFaultPlan, truncate_file
from repro.store.journal import ProgressJournal
from repro.store.segments import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    SegmentedTraceStore,
    segment_file_name,
    store_key,
    write_segment,
)
from repro.telemetry.config import TraceConfig
from repro.topology.sharding import ShardSpan, plan_shards
from repro.utils.errors import SimulatedCrashError, ValidationError
from repro.utils.io import sha256_file

__all__ = ["simulate_trace_to_store", "DEFAULT_SEGMENTS"]

#: Default segment count; clamped to the machine's cabinet-row count.
DEFAULT_SEGMENTS = 8

#: Journal step holding run-level metadata (app names) alongside the
#: numeric per-segment steps.
_META_STEP = "__meta__"


def _verified_entry(
    journal: ProgressJournal, root: Path, index: int
) -> dict | None:
    """The journaled entry for segment ``index`` iff its bytes check out."""
    entry = journal.entry(str(index))
    if entry is None:
        return None
    path = root / str(entry.get("file", segment_file_name(index)))
    try:
        if sha256_file(path) == entry["checksum"]:
            return entry
    except (OSError, KeyError):
        pass
    journal.forget(str(index))
    return None


def simulate_trace_to_store(
    config: TraceConfig | None = None,
    root: str | Path = "trace-store",
    *,
    segments: int = DEFAULT_SEGMENTS,
    jobs: int = 1,
    resume: bool = False,
    crash_after_segments: int | None = None,
    write_fault: WriteFaultPlan | None = None,
) -> SegmentedTraceStore:
    """Simulate ``config`` segment-at-a-time into a store at ``root``.

    Only one segment's :class:`~repro.telemetry.simulator.ShardResult`
    is in memory at a time (per worker), which is what lets a trace far
    larger than RAM be produced and later consumed out of core.

    ``resume`` continues a killed run on top of its journal (refusing,
    via :class:`~repro.utils.errors.ValidationError`, a journal written
    under a different config or plan); without it any previous segments,
    journal, and manifest under ``root`` are discarded.  The fault hooks
    — ``crash_after_segments`` raises
    :class:`~repro.utils.errors.SimulatedCrashError` after that many
    fresh commits, ``write_fault`` injects an ENOSPC or torn-commit
    failure — exist so tests and ``tools/ci.sh`` can exercise the
    recovery path deliberately.
    """
    config = config or TraceConfig()
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if segments < 1:
        raise ValidationError(f"segments must be >= 1, got {segments}")
    spans = plan_shards(config.machine, segments)
    key = store_key(config, len(spans))
    store = SegmentedTraceStore(root)
    journal = ProgressJournal(root / JOURNAL_NAME, key=key)

    done: dict[int, dict] = {}
    if resume:
        journal.load(require_match=True)
        for span in spans:
            entry = _verified_entry(journal, root, span.index)
            if entry is not None:
                done[span.index] = entry
    else:
        for path in sorted(root.glob("seg-*.npz")):
            path.unlink()
        (root / MANIFEST_NAME).unlink(missing_ok=True)
        shutil.rmtree(store.quarantine_path, ignore_errors=True)
        journal.clear()

    pending = [span for span in spans if span.index not in done]
    committed_this_run = 0
    app_names: list[str] | None = None
    meta = journal.entry(_META_STEP)
    if meta is not None:
        app_names = list(meta["app_names"])

    for span, result in iter_shard_results(config, pending, jobs=jobs):
        if app_names is None:
            app_names = list(result.app_names)
            journal.record(_META_STEP, {"app_names": app_names})
        limit = (
            write_fault.limit_bytes
            if write_fault is not None
            and write_fault.kind == "enospc"
            and write_fault.segment == span.index
            else None
        )
        path = root / segment_file_name(span.index)
        entry = write_segment(path, result, span, limit_bytes=limit)
        journal.record(str(span.index), entry)
        done[span.index] = entry
        committed_this_run += 1
        if (
            write_fault is not None
            and write_fault.kind == "torn_commit"
            and write_fault.segment == span.index
        ):
            # The rename survived, the page cache did not: journal and
            # file name say committed, the bytes are short.
            truncate_file(path, write_fault.fraction)
            raise SimulatedCrashError(committed_this_run, unit="segments")
        if (
            crash_after_segments is not None
            and committed_this_run >= crash_after_segments
            and len(done) < len(spans)
        ):
            raise SimulatedCrashError(committed_this_run, unit="segments")

    if app_names is None:
        raise ValidationError(
            f"journal at {journal.path} has segments but no run metadata; "
            "rerun without resume"
        )
    entries = [done[span.index] for span in spans]
    store.write_manifest(config, entries, app_names)
    return store
