"""Streamed content digest of a segmented store.

:func:`store_trace_digest` computes, one column at a time, exactly the
digest that ``tests/golden/canonical.trace_digest`` computes over the
fully merged in-memory trace — without ever materializing more than one
sample column (plus the tiny run/node tables).  This is what lets the
golden suite, ``tools/ci.sh``, and ``tools/check_determinism.py`` assert
bit-identity for stores too large to load whole:

    store_trace_digest(store) == trace_digest(store.load_trace())

holds by construction, and a parity test enforces it.

The streaming reconstruction mirrors
:func:`~repro.telemetry.simulator.merge_shard_results` operation for
operation — first-contributor-wins for per-run draws, ``sbe_total``
summed segment-ascending, node aggregates concatenated then divided —
so every float is produced by the same sequence of arithmetic as the
merged trace, not merely a mathematically equal one.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.store.segments import SegmentedTraceStore
from repro.utils.errors import SegmentCorruptionError

__all__ = ["store_trace_digest"]


def _update_array(hasher, name: str, array: np.ndarray) -> None:
    # Must match tests/golden/canonical._update_array byte for byte.
    hasher.update(name.encode())
    hasher.update(str(array.dtype).encode())
    hasher.update(np.ascontiguousarray(array).tobytes())


def _run_names(store: SegmentedTraceStore) -> list[str]:
    path = store.segment_path(0)
    with np.load(path) as data:
        return [k.split("/", 1)[1] for k in data.files if k.startswith("runs/")]


def _merged_runs(store: SegmentedTraceStore) -> dict[str, np.ndarray]:
    """Rebuild the merged runs table from per-segment run rows.

    Replicates the merge exactly: rows laid out in completion order, the
    lowest-index segment's values winning (they are asserted equal at
    merge time anyway), ``sbe_total`` accumulated segment-ascending so
    float additions happen in the same order as the in-memory merge.
    """
    order = store.completion_order()
    position = {run_id: pos for pos, run_id in enumerate(order)}
    names = _run_names(store)
    columns: dict[str, np.ndarray] = {}
    seen = np.zeros(len(order), dtype=bool)
    for index in range(store.num_segments):
        with np.load(store.segment_path(index)) as data:
            local = {name: data[f"runs/{name}"] for name in names}
        idx = np.asarray(
            [position[int(run_id)] for run_id in local["run_id"]], dtype=np.int64
        )
        fresh = ~seen[idx]
        for name, arr in local.items():
            col = columns.setdefault(name, np.zeros(len(order), dtype=arr.dtype))
            col[idx[fresh]] = arr[fresh]
            if name == "sbe_total":
                col[idx[~fresh]] += arr[~fresh]
        seen[idx] = True
    if not seen.all():
        missing = int(np.flatnonzero(~seen)[0])
        raise SegmentCorruptionError(
            store.root,
            f"run {order[missing]} appears in no segment; store is incomplete",
        )
    return columns


def store_trace_digest(store: SegmentedTraceStore, *, strict: bool = False) -> str:
    """Content hash of the store's trace, streamed segment-at-a-time.

    Damaged segments heal (or raise, under ``strict``) before any bytes
    are hashed, via :meth:`SegmentedTraceStore.recover`.
    """
    store.recover(strict=strict)
    total, dests = store.row_layout()
    hasher = hashlib.sha256()

    for name in sorted(store.sample_column_names()):
        column: np.ndarray | None = None
        for index in range(store.num_segments):
            part = store.read_segment_array(index, f"samples/{name}")
            if column is None:
                column = np.empty(total, dtype=part.dtype)
            column[dests[index]] = part
        _update_array(hasher, f"samples/{name}", column)

    runs = _merged_runs(store)
    for name in sorted(runs):
        _update_array(hasher, f"runs/{name}", runs[name])

    num_ticks = int(store.read_segment_array(0, "num_ticks"))
    temp_sum = np.concatenate(
        [store.read_segment_array(i, "temp_sum") for i in range(store.num_segments)]
    )
    power_sum = np.concatenate(
        [store.read_segment_array(i, "power_sum") for i in range(store.num_segments)]
    )
    susceptibility = np.concatenate(
        [
            store.read_segment_array(i, "node_susceptibility")
            for i in range(store.num_segments)
        ]
    )
    _update_array(hasher, "node_mean_temp", temp_sum / max(1, num_ticks))
    _update_array(hasher, "node_mean_power", power_sum / max(1, num_ticks))
    _update_array(hasher, "node_susceptibility", susceptibility)
    hasher.update(json.dumps(store.app_names()).encode())

    recorded: dict[int, dict[str, np.ndarray]] = {}
    for index in range(store.num_segments):
        with np.load(store.segment_path(index)) as data:
            for key in data.files:
                if key.startswith("recorded/"):
                    _, node_str, name = key.split("/", 2)
                    recorded.setdefault(int(node_str), {})[name] = data[key]
    for node in sorted(recorded):
        for name in sorted(recorded[node]):
            _update_array(hasher, f"recorded/{node}/{name}", recorded[node][name])
    return hasher.hexdigest()
