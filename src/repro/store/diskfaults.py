"""Seeded disk-fault injection for the segmented trace store.

Storage failures are rare in any one run and near-certain across a fleet,
so the recovery path must be exercised deliberately.  This module damages
a committed store (or a write in flight) in the specific ways real disks
fail, each fully determined by ``(kind, seed)`` so every fault scenario
is replayable in CI:

``torn``
    A segment file is truncated to a seeded fraction of its length —
    what an interrupted write or lost tail of page cache leaves behind.
``bitflip``
    One seeded bit of a segment file is inverted — silent media
    corruption that only a checksum can catch.
``missing``
    A segment file is deleted — an unlinked or never-flushed file.
``stale_manifest``
    The manifest's recorded checksum for one segment is rewritten to a
    bogus value — the manifest and data disagree, as after a partial
    restore or an out-of-order flush.

Two further kinds damage a write *in flight* and are applied by the
pipeline via :class:`WriteFaultPlan` rather than post hoc:

``enospc``
    The segment write fails with ``ENOSPC`` mid-stream; the atomic-write
    protocol must leave no committed file behind.
``torn_commit``
    The segment commits (journal included), then its bytes are truncated
    and the run dies — a rename that survived a crash whose data did not.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.store.segments import SegmentedTraceStore
from repro.utils.errors import ValidationError
from repro.utils.io import atomic_write_json

__all__ = [
    "DISK_FAULT_KINDS",
    "WRITE_FAULT_KINDS",
    "DiskFaultEvent",
    "DiskFaultSpec",
    "WriteFaultPlan",
    "inject_disk_fault",
]

#: Post-hoc fault kinds :func:`inject_disk_fault` can apply to a store.
DISK_FAULT_KINDS = ("torn", "bitflip", "missing", "stale_manifest")

#: Write-time fault kinds applied by the pipeline via :class:`WriteFaultPlan`.
WRITE_FAULT_KINDS = ("enospc", "torn_commit")


@dataclass(frozen=True)
class DiskFaultSpec:
    """One post-hoc fault, fully determined by ``(kind, seed)``.

    ``segment`` pins the victim segment; left ``None``, the seeded RNG
    picks one.  ``fraction`` pins the truncation point for ``torn``
    (otherwise seeded uniform in [0.1, 0.9)).
    """

    kind: str
    seed: int = 0
    segment: int | None = None
    fraction: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in DISK_FAULT_KINDS:
            raise ValidationError(
                f"unknown disk fault kind {self.kind!r}; "
                f"expected one of {DISK_FAULT_KINDS}"
            )
        if self.fraction is not None and not 0.0 < self.fraction < 1.0:
            raise ValidationError(
                f"fraction must be in (0, 1), got {self.fraction}"
            )


@dataclass(frozen=True)
class WriteFaultPlan:
    """One write-time fault the pipeline applies while producing a store.

    ``enospc`` caps the victim segment's write at ``limit_bytes`` and
    fails it with ``ENOSPC``; ``torn_commit`` lets the segment commit,
    truncates the committed file to ``fraction`` of its length, and
    crashes the run.
    """

    kind: str
    segment: int = 0
    limit_bytes: int = 4096
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in WRITE_FAULT_KINDS:
            raise ValidationError(
                f"unknown write fault kind {self.kind!r}; "
                f"expected one of {WRITE_FAULT_KINDS}"
            )
        if not 0.0 < self.fraction < 1.0:
            raise ValidationError(
                f"fraction must be in (0, 1), got {self.fraction}"
            )
        if self.limit_bytes < 0:
            raise ValidationError(
                f"limit_bytes must be >= 0, got {self.limit_bytes}"
            )


@dataclass(frozen=True)
class DiskFaultEvent:
    """What :func:`inject_disk_fault` actually did, for logs and tests."""

    kind: str
    segment: int
    path: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} fault on segment {self.segment}: {self.detail}"


def truncate_file(path: Path, fraction: float) -> int:
    """Truncate ``path`` to ``fraction`` of its size; returns new length.

    Keeps at least one byte so the torn file exists but cannot parse.
    """
    size = path.stat().st_size
    keep = max(1, int(size * fraction))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


def inject_disk_fault(
    store: SegmentedTraceStore, spec: DiskFaultSpec
) -> DiskFaultEvent:
    """Damage a committed store per ``spec``; returns what was done.

    Deterministic: the victim segment, truncation point, and flipped bit
    are all drawn from ``default_rng(spec.seed)``, so a failing fault
    scenario replays exactly from its ``(kind, seed)`` pair.
    """
    rng = np.random.default_rng(spec.seed)
    num_segments = store.num_segments
    if spec.segment is not None:
        if not 0 <= spec.segment < num_segments:
            raise ValidationError(
                f"segment {spec.segment} out of range [0, {num_segments})"
            )
        segment = int(spec.segment)
    else:
        segment = int(rng.integers(0, num_segments))
    path = store.segment_path(segment)

    if spec.kind == "torn":
        fraction = (
            spec.fraction
            if spec.fraction is not None
            else float(rng.uniform(0.1, 0.9))
        )
        keep = truncate_file(path, fraction)
        detail = f"truncated {path.name} to {keep} bytes ({fraction:.3f})"
    elif spec.kind == "bitflip":
        data = bytearray(path.read_bytes())
        bit = int(rng.integers(0, len(data) * 8))
        data[bit // 8] ^= 1 << (bit % 8)
        path.write_bytes(bytes(data))
        detail = f"flipped bit {bit} of {path.name}"
    elif spec.kind == "missing":
        path.unlink()
        detail = f"deleted {path.name}"
    else:  # stale_manifest
        manifest = store.manifest()
        entry = manifest["segments"][segment]
        stale = "0" * len(entry["checksum"])
        entry["checksum"] = stale
        atomic_write_json(store.manifest_path, manifest)
        path = store.manifest_path
        detail = (
            f"manifest now records checksum {stale[:12]}... "
            f"for intact segment {segment}"
        )

    return DiskFaultEvent(
        kind=spec.kind, segment=segment, path=str(path), detail=detail
    )
