"""Journaled progress manifests for crash-safe batch pipelines.

A segmented simulation (or any other segment-at-a-time pipeline) commits
work one segment at a time.  The journal records each commit — atomically,
via :func:`repro.utils.io.atomic_write_json` — so a killed run can resume
from exactly the segments that were durably written, and nothing else.

The journal is *scoped by a key* hashing everything that determines
segment content (configuration, segment plan, store format).  Resuming
against a journal written under a different key would silently mix
incompatible segments, so it is a hard
:class:`~repro.utils.errors.ValidationError`, mirroring the serving
checkpoint's compatibility-key rule.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.utils.errors import ValidationError
from repro.utils.io import atomic_write_json

__all__ = ["ProgressJournal", "JOURNAL_FORMAT"]

#: Bump when the journal's on-disk layout changes incompatibly.
JOURNAL_FORMAT = 1


class ProgressJournal:
    """Atomic, key-scoped record of committed pipeline steps.

    The journal file is rewritten in full after every commit; it is tiny
    (one JSON object per committed segment), so the rewrite cost is
    negligible next to a segment write.
    """

    def __init__(self, path: str | Path, *, key: str) -> None:
        self.path = Path(path)
        self.key = key
        self._entries: dict[str, dict] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    def load(self, *, require_match: bool = True) -> bool:
        """Read the journal from disk; returns ``True`` when one existed.

        A journal written under a different key (different config,
        segment plan, or store format) raises
        :class:`ValidationError` when ``require_match`` is set — the
        caller must not resume on top of it.  An unreadable or
        wrong-format journal is treated as absent: the pipeline simply
        starts over, re-verifying any segments it finds.
        """
        self._loaded = True
        try:
            raw = json.loads(self.path.read_text())
            fmt = int(raw["format"])
            key = str(raw["key"])
            entries = dict(raw["entries"])
        except (OSError, ValueError, KeyError, TypeError):
            self._entries = {}
            return False
        if fmt != JOURNAL_FORMAT:
            self._entries = {}
            return False
        if key != self.key:
            if require_match:
                raise ValidationError(
                    f"progress journal {self.path} was written by an "
                    f"incompatible run (key {key[:12]}... != "
                    f"{self.key[:12]}...); refusing to resume"
                )
            self._entries = {}
            return False
        self._entries = {str(k): dict(v) for k, v in entries.items()}
        return True

    # ------------------------------------------------------------------
    def record(self, step: str, entry: dict) -> None:
        """Durably record ``step`` as committed with metadata ``entry``."""
        self._entries[str(step)] = dict(entry)
        self._write()

    def forget(self, step: str) -> None:
        """Remove a step (e.g. a segment that failed re-verification)."""
        if str(step) in self._entries:
            del self._entries[str(step)]
            self._write()

    def entry(self, step: str) -> dict | None:
        """The recorded metadata for ``step``, or ``None``."""
        return self._entries.get(str(step))

    def steps(self) -> list[str]:
        """All committed step names, sorted."""
        return sorted(self._entries)

    def clear(self) -> None:
        """Drop every entry and delete the journal file."""
        self._entries = {}
        self.path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def _write(self) -> None:
        atomic_write_json(
            self.path,
            {
                "format": JOURNAL_FORMAT,
                "key": self.key,
                "entries": self._entries,
            },
        )
