"""Segmented on-disk trace format with verify-on-read and self-healing.

A store directory holds one checksummed npz archive per row-aligned
:class:`~repro.topology.sharding.ShardSpan` — each the faithful
serialization of the span's :class:`~repro.telemetry.simulator.ShardResult`
— plus a ``MANIFEST.json`` written **last** (atomic temp-then-rename via
:mod:`repro.utils.io`), which is the store's commit point: a reader never
observes a store that claims to be complete but is not.

Layout::

    store/
      seg-0000.npz        one ShardResult per row-aligned span
      seg-0001.npz
      journal.json        per-segment commit journal (crash-safe resume)
      MANIFEST.json       format, config, per-segment checksums — written last
      quarantine/         corrupt segments moved aside by recovery

Because every random draw in the simulator is keyed by a stable entity
(cabinet row, run id, (run, node) pair), a damaged segment can be healed
by re-simulating *only its span* — the healed store is bit-identical to a
clean one, which ``tools/check_determinism.py`` and the golden suite
enforce.  Verification is per segment on read; a failure quarantines the
segment under :class:`~repro.utils.errors.DegradedDataWarning` (or raises
:class:`~repro.utils.errors.SegmentCorruptionError` in strict mode).
"""

from __future__ import annotations

import errno
import json
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import get_registry
from repro.telemetry.config import TraceConfig
from repro.telemetry.simulator import ShardResult, merge_shard_results
from repro.telemetry.trace import Trace, config_from_dict, config_to_dict
from repro.topology.sharding import ShardSpan
from repro.utils.errors import (
    DegradedDataWarning,
    SegmentCorruptionError,
    TraceIOError,
)
from repro.utils.io import atomic_write, atomic_write_json, sha256_bytes, sha256_file

__all__ = [
    "STORE_FORMAT",
    "MANIFEST_NAME",
    "JOURNAL_NAME",
    "SegmentStatus",
    "SegmentedTraceStore",
    "segment_file_name",
    "store_key",
    "write_segment",
]

#: Bump when the segment or manifest layout changes incompatibly.
STORE_FORMAT = 1

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.json"
QUARANTINE_DIR = "quarantine"


def segment_file_name(index: int) -> str:
    """Canonical file name of segment ``index``."""
    return f"seg-{index:04d}.npz"


def store_key(config: TraceConfig, num_segments: int) -> str:
    """Compatibility key: hashes everything that fixes segment content.

    Two runs share a key exactly when their segments are interchangeable
    (same configuration, same segment plan, same store format), which is
    the precondition for resuming a killed run on top of its journal.
    """
    payload = {
        "format": STORE_FORMAT,
        "config": config_to_dict(config),
        "segments": int(num_segments),
    }
    return sha256_bytes(json.dumps(payload, sort_keys=True).encode())


# ----------------------------------------------------------------------
# ShardResult <-> npz serialization
# ----------------------------------------------------------------------
def _result_to_arrays(result: ShardResult) -> dict[str, np.ndarray]:
    """Flatten a :class:`ShardResult` into named arrays for one npz."""
    arrays: dict[str, np.ndarray] = {
        "block_run_id": np.asarray(
            [run_id for run_id, _ in result.blocks], dtype=np.int64
        ),
        "block_size": np.asarray(
            [next(iter(block.values())).shape[0] for _, block in result.blocks],
            dtype=np.int64,
        ),
        "completion_order": np.asarray(result.completion_order, dtype=np.int64),
        "temp_sum": result.temp_sum,
        "power_sum": result.power_sum,
        "node_susceptibility": result.node_susceptibility,
        "num_ticks": np.asarray(result.num_ticks, dtype=np.int64),
    }
    if result.blocks:
        for name in result.blocks[0][1]:
            arrays[f"samples/{name}"] = np.concatenate(
                [block[name] for _, block in result.blocks]
            )
    if result.run_rows:
        for name in result.run_rows[0]:
            arrays[f"runs/{name}"] = np.asarray(
                [row[name] for row in result.run_rows]
            )
    for node, series in result.recorded.items():
        for name, col in series.items():
            arrays[f"recorded/{node}/{name}"] = col
    for stage, seconds in result.stage_seconds.items():
        arrays[f"stage/{stage}"] = np.asarray(float(seconds))
    return arrays


def _arrays_to_result(
    data, *, lo: int, hi: int, app_names: list[str]
) -> ShardResult:
    """Rebuild a :class:`ShardResult` from one segment's arrays.

    ``data`` is any mapping with a ``files``-style key list (an open
    ``np.load`` handle); arrays are read lazily, one zip member at a
    time.
    """
    block_run_id = data["block_run_id"]
    block_size = data["block_size"]
    sample_names = [k.split("/", 1)[1] for k in data.files if k.startswith("samples/")]
    run_names = [k.split("/", 1)[1] for k in data.files if k.startswith("runs/")]

    offsets = np.concatenate([[0], np.cumsum(block_size)]).astype(np.int64)
    columns = {name: data[f"samples/{name}"] for name in sample_names}
    blocks: list[tuple[int, dict[str, np.ndarray]]] = []
    for b, run_id in enumerate(block_run_id):
        start, stop = int(offsets[b]), int(offsets[b + 1])
        blocks.append(
            (int(run_id), {name: columns[name][start:stop] for name in sample_names})
        )

    run_columns = {name: data[f"runs/{name}"] for name in run_names}
    num_runs = next(iter(run_columns.values())).shape[0] if run_columns else 0
    run_rows = [
        {name: run_columns[name][i].item() for name in run_names}
        for i in range(num_runs)
    ]

    recorded: dict[int, dict[str, np.ndarray]] = {}
    for key in data.files:
        if key.startswith("recorded/"):
            _, node_str, name = key.split("/", 2)
            recorded.setdefault(int(node_str), {})[name] = data[key]
    stage_seconds = {
        key.split("/", 1)[1]: float(data[key])
        for key in data.files
        if key.startswith("stage/")
    }
    return ShardResult(
        lo=lo,
        hi=hi,
        completion_order=[int(r) for r in data["completion_order"]],
        blocks=blocks,
        run_rows=run_rows,
        temp_sum=data["temp_sum"],
        power_sum=data["power_sum"],
        node_susceptibility=data["node_susceptibility"],
        recorded=recorded,
        app_names=list(app_names),
        num_ticks=int(data["num_ticks"]),
        stage_seconds=stage_seconds,
    )


class _LimitedWriter:
    """File wrapper that fails with ENOSPC after a byte budget.

    The disk-fault injector uses this to make a segment write die
    mid-stream exactly like a full filesystem would; the atomic-write
    protocol must then leave no trace of the attempt.
    """

    def __init__(self, fh, limit_bytes: int) -> None:
        self._fh = fh
        self._remaining = int(limit_bytes)

    def write(self, data) -> int:
        if len(data) > self._remaining:
            self._fh.write(data[: self._remaining])
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        self._remaining -= len(data)
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)


def write_segment(
    path: str | Path,
    result: ShardResult,
    span: ShardSpan,
    *,
    limit_bytes: int | None = None,
) -> dict:
    """Atomically write one segment; returns its manifest entry.

    The npz is staged in a sibling temp file and renamed into place, so
    a crash or an injected ENOSPC (``limit_bytes``) never leaves a
    half-written segment under the committed name.  The returned entry
    records the span geometry, row/block counts, and the SHA-256
    checksum of the committed bytes.
    """
    path = Path(path)
    arrays = _result_to_arrays(result)
    try:
        with atomic_write(path) as tmp:
            with open(tmp, "wb") as fh:
                sink = fh if limit_bytes is None else _LimitedWriter(fh, limit_bytes)
                np.savez_compressed(sink, **arrays)
    except OSError as exc:
        raise TraceIOError(path, f"segment write failed: {exc}") from exc
    num_samples = int(
        sum(next(iter(block.values())).shape[0] for _, block in result.blocks)
    )
    registry = get_registry()
    registry.counter(
        "repro_store_segments_written_total", "Segments committed to disk."
    ).inc()
    registry.counter(
        "repro_store_segment_rows_total", "Sample rows committed to segments."
    ).inc(num_samples)
    return {
        **span.to_dict(),
        "file": path.name,
        "checksum": sha256_file(path),
        "num_samples": num_samples,
        "num_blocks": len(result.blocks),
        "num_runs": len(result.run_rows),
    }


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentStatus:
    """Verification outcome for one segment."""

    index: int
    status: str  # "ok" | "missing" | "corrupt" | "recovered"
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"seg-{self.index:04d}  {self.status}"
            + (f"  ({self.detail})" if self.detail else "")
        )


class SegmentedTraceStore:
    """One committed segmented trace on disk."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._manifest: dict | None = None

    # -- paths ----------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """The commit-point manifest file."""
        return self.root / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        """The per-segment progress journal."""
        return self.root / JOURNAL_NAME

    @property
    def quarantine_path(self) -> Path:
        """Directory corrupt segments are moved into by recovery."""
        return self.root / QUARANTINE_DIR

    def segment_path(self, index: int) -> Path:
        return self.root / segment_file_name(index)

    @property
    def is_committed(self) -> bool:
        """Whether the store's manifest has been written."""
        return self.manifest_path.is_file()

    # -- manifest -------------------------------------------------------
    def manifest(self) -> dict:
        """The parsed manifest (cached); raises :class:`TraceIOError`."""
        if self._manifest is None:
            try:
                raw = json.loads(self.manifest_path.read_text())
            except (OSError, ValueError) as exc:
                raise TraceIOError(
                    self.manifest_path, f"unreadable store manifest: {exc}"
                ) from exc
            if not isinstance(raw, dict) or "segments" not in raw:
                raise TraceIOError(
                    self.manifest_path, "store manifest lacks a 'segments' entry"
                )
            if int(raw.get("format", -1)) != STORE_FORMAT:
                raise TraceIOError(
                    self.manifest_path,
                    f"unsupported store format {raw.get('format')!r} "
                    f"(this code reads format {STORE_FORMAT})",
                )
            self._manifest = raw
        return self._manifest

    def write_manifest(
        self, config: TraceConfig, entries: list[dict], app_names: list[str]
    ) -> None:
        """Commit the store: write the manifest last, atomically."""
        entries = sorted(entries, key=lambda e: int(e["index"]))
        manifest = {
            "format": STORE_FORMAT,
            "key": store_key(config, len(entries)),
            "config": config_to_dict(config),
            "app_names": list(app_names),
            "segments": entries,
        }
        atomic_write_json(self.manifest_path, manifest)
        self._manifest = manifest

    def config(self) -> TraceConfig:
        """The trace configuration recorded in the manifest."""
        return config_from_dict(self.manifest()["config"])

    def app_names(self) -> list[str]:
        """Application names recorded in the manifest."""
        return list(self.manifest()["app_names"])

    @property
    def num_segments(self) -> int:
        return len(self.manifest()["segments"])

    @property
    def num_samples(self) -> int:
        """Total sample rows across all segments (from the manifest)."""
        return sum(int(e["num_samples"]) for e in self.manifest()["segments"])

    def entries(self) -> list[dict]:
        """Per-segment manifest entries, index-ascending."""
        return list(self.manifest()["segments"])

    def span(self, index: int) -> ShardSpan:
        """The :class:`ShardSpan` geometry of segment ``index``."""
        return ShardSpan.from_dict(self.manifest()["segments"][index])

    # -- verification ---------------------------------------------------
    def verify_segment(self, index: int) -> SegmentStatus:
        """Checksum-verify one segment without reading its arrays."""
        entry = self.manifest()["segments"][index]
        path = self.segment_path(index)
        if not path.is_file():
            status = SegmentStatus(index, "missing", f"{path.name} does not exist")
        else:
            actual = sha256_file(path)
            expected = entry["checksum"]
            if actual != expected:
                status = SegmentStatus(
                    index,
                    "corrupt",
                    f"checksum mismatch: expected {expected}, actual {actual}",
                )
            else:
                status = SegmentStatus(index, "ok")
        get_registry().counter(
            "repro_store_segments_verified_total",
            "Segment checksum verifications, by outcome.",
        ).inc(status=status.status)
        return status

    def verify(self) -> list[SegmentStatus]:
        """Checksum-verify every segment (no healing)."""
        return [
            self.verify_segment(i) for i in range(len(self.manifest()["segments"]))
        ]

    # -- reading --------------------------------------------------------
    def load_shard_result(self, index: int, *, verify: bool = True) -> ShardResult:
        """Deserialize one segment; raises :class:`SegmentCorruptionError`.

        With ``verify`` (the default) the file checksum is checked
        before any bytes are parsed, so torn writes and bit flips are
        reported as corruption rather than surfacing as numpy errors.
        """
        entry = self.manifest()["segments"][index]
        path = self.segment_path(index)
        if verify:
            status = self.verify_segment(index)
            if status.status != "ok":
                raise SegmentCorruptionError(path, status.detail, index=index)
        try:
            with np.load(path) as data:
                return _arrays_to_result(
                    data,
                    lo=int(entry["lo"]),
                    hi=int(entry["hi"]),
                    app_names=self.app_names(),
                )
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise SegmentCorruptionError(
                path, f"segment archive does not deserialize: {exc}", index=index
            ) from exc

    def read_segment_array(self, index: int, name: str) -> np.ndarray:
        """Read one named array from a segment (lazy, one zip member).

        No checksum pass — callers stream many single-array reads after
        an up-front :meth:`recover`/:meth:`verify`; a torn member still
        surfaces as :class:`SegmentCorruptionError` via the zip CRC.
        """
        path = self.segment_path(index)
        try:
            with np.load(path) as data:
                return data[name]
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise SegmentCorruptionError(
                path, f"cannot read array {name!r}: {exc}", index=index
            ) from exc

    def segment_samples(self, index: int) -> dict[str, np.ndarray]:
        """One segment's sample columns (rows in segment-local order).

        The out-of-core unit of the streaming feature builder: callers
        pair it with :meth:`row_layout` to place the rows globally.
        """
        path = self.segment_path(index)
        try:
            with np.load(path) as data:
                return {
                    key.split("/", 1)[1]: data[key]
                    for key in data.files
                    if key.startswith("samples/")
                }
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise SegmentCorruptionError(
                path, f"cannot read sample columns: {exc}", index=index
            ) from exc

    def sample_column_names(self) -> list[str]:
        """Names of the samples-table columns (from the first segment)."""
        path = self.segment_path(0)
        try:
            with np.load(path) as data:
                return [
                    k.split("/", 1)[1]
                    for k in data.files
                    if k.startswith("samples/")
                ]
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise SegmentCorruptionError(
                path, f"cannot list sample columns: {exc}", index=0
            ) from exc

    # -- recovery -------------------------------------------------------
    def _quarantine(self, index: int) -> Path | None:
        """Move a damaged segment file aside; returns its new path."""
        path = self.segment_path(index)
        if not path.is_file():
            return None
        self.quarantine_path.mkdir(parents=True, exist_ok=True)
        generation = sum(
            1
            for p in self.quarantine_path.iterdir()
            if p.name.startswith(path.name)
        )
        target = self.quarantine_path / f"{path.name}.{generation}"
        path.replace(target)
        get_registry().counter(
            "repro_store_segments_quarantined_total",
            "Damaged segment files moved aside before healing.",
        ).inc()
        return target

    def recover_segment(self, index: int, *, detail: str = "") -> SegmentStatus:
        """Heal one segment by re-simulating its span.

        The damaged file (if any) is quarantined, the span is re-run
        through the entity-keyed simulator — producing bit-identical
        content — and the manifest entry is rewritten with the new
        checksum.  Emits :class:`DegradedDataWarning`; the caller opts
        into strictness by checking :meth:`verify` first.
        """
        from repro.parallel.simulate import simulate_span

        span = self.span(index)
        quarantined = self._quarantine(index)
        warnings.warn(
            f"segment {index} of {self.root} is damaged ({detail or 'unknown'}); "
            f"re-simulating span [{span.lo}, {span.hi})"
            + (f", original quarantined at {quarantined}" if quarantined else ""),
            DegradedDataWarning,
            stacklevel=2,
        )
        result = simulate_span((self.config(), span))
        entry = write_segment(self.segment_path(index), result, span)
        entries = self.entries()
        entries[index] = entry
        self.write_manifest(self.config(), entries, self.app_names())
        registry = get_registry()
        registry.counter(
            "repro_store_segments_healed_total",
            "Segments re-simulated back to pristine bits.",
        ).inc()
        registry.event("segment_healed", segment=index)
        return SegmentStatus(index, "recovered", detail)

    def recover(self, *, strict: bool = False) -> list[SegmentStatus]:
        """Verify every segment and heal the damaged ones in place.

        In strict mode the first damaged segment raises
        :class:`SegmentCorruptionError` instead of healing.
        """
        statuses: list[SegmentStatus] = []
        for status in self.verify():
            if status.status == "ok":
                statuses.append(status)
                continue
            if strict:
                raise SegmentCorruptionError(
                    self.segment_path(status.index),
                    f"segment {status.index} is {status.status}: {status.detail}",
                    index=status.index,
                )
            statuses.append(
                self.recover_segment(status.index, detail=status.detail)
            )
        return statuses

    # -- whole-trace access ---------------------------------------------
    def load_trace(self, *, strict: bool = False) -> Trace:
        """Reassemble the full in-memory :class:`Trace`.

        Every segment is verified on read; damaged segments are healed
        (re-simulated, quarantined, manifest rewritten) under
        :class:`DegradedDataWarning` — or raise
        :class:`SegmentCorruptionError` in strict mode.  The merged
        result is bit-identical to ``TraceSimulator(config).run()``.
        """
        config = self.config()
        results: list[ShardResult] = []
        for index in range(self.num_segments):
            try:
                results.append(self.load_shard_result(index))
            except SegmentCorruptionError as exc:
                if strict:
                    raise
                self.recover_segment(index, detail=str(exc))
                results.append(self.load_shard_result(index))
        trace = merge_shard_results(config, results)
        trace.meta["store"] = str(self.root)
        return trace

    def iter_shard_results(self, *, strict: bool = False):
        """Yield ``(index, ShardResult)`` segment-at-a-time.

        The out-of-core counterpart of :meth:`load_trace`: only one
        segment is materialized at a time.  Damaged segments heal (or
        raise, in strict mode) exactly as in :meth:`load_trace`.
        """
        for index in range(self.num_segments):
            try:
                result = self.load_shard_result(index)
            except SegmentCorruptionError as exc:
                if strict:
                    raise
                self.recover_segment(index, detail=str(exc))
                result = self.load_shard_result(index)
            yield index, result

    # -- row layout -----------------------------------------------------
    def completion_order(self) -> list[int]:
        """The schedule's run-completion order (from the first segment)."""
        return [int(r) for r in self.read_segment_array(0, "completion_order")]

    def row_layout(self) -> tuple[int, list[np.ndarray]]:
        """Global row destinations for every segment's sample rows.

        Returns ``(total_rows, dests)`` where ``dests[s][i]`` is the row
        index that segment ``s``'s ``i``-th sample occupies in the merged
        (serial-order) trace.  Only the tiny block-index arrays are read,
        never the sample columns, so streaming consumers (the segment
        digest, the out-of-core feature builder) can scatter columns into
        global order one segment at a time.
        """
        order = self.completion_order()
        position = {run_id: pos for pos, run_id in enumerate(order)}
        # (run position, segment index) -> block length; serial row order
        # is runs in completion order, segments ascending within a run.
        block_meta: list[list[tuple[int, int, int]]] = []
        for index in range(self.num_segments):
            run_ids = self.read_segment_array(index, "block_run_id")
            sizes = self.read_segment_array(index, "block_size")
            block_meta.append(
                [
                    (position[int(rid)], int(size), b)
                    for b, (rid, size) in enumerate(zip(run_ids, sizes))
                ]
            )
        flat = [
            (pos, seg, b, size)
            for seg, blocks in enumerate(block_meta)
            for (pos, size, b) in blocks
        ]
        flat.sort(key=lambda t: (t[0], t[1]))
        offset = 0
        starts: dict[tuple[int, int], int] = {}
        for pos, seg, b, size in flat:
            starts[(seg, b)] = offset
            offset += size
        total = offset
        dests: list[np.ndarray] = []
        for seg, blocks in enumerate(block_meta):
            parts = [
                np.arange(starts[(seg, b)], starts[(seg, b)] + size, dtype=np.int64)
                for (pos, size, b) in blocks
            ]
            dests.append(
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            )
        return total, dests
