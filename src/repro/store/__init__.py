"""Durable segmented trace store.

``repro.store`` holds simulated traces as **segments** — one checksummed
npz archive per row-aligned :class:`~repro.topology.sharding.ShardSpan`
— under a manifest-written-last commit protocol, so simulation, feature
building, and caching can produce and consume traces segment-at-a-time
without ever materializing the full arrays, and every storage failure
mode (torn write, bit flip, missing segment, stale manifest, ENOSPC) is
detectable, injectable, and recoverable.  Recovery re-simulates only the
damaged spans through the entity-keyed RNG, so a healed store is
bit-identical to a clean one.
"""

from repro.store.diskfaults import (
    DISK_FAULT_KINDS,
    DiskFaultEvent,
    DiskFaultSpec,
    WriteFaultPlan,
    inject_disk_fault,
)
from repro.store.digest import store_trace_digest
from repro.store.journal import ProgressJournal
from repro.store.pipeline import simulate_trace_to_store
from repro.store.segments import (
    STORE_FORMAT,
    SegmentStatus,
    SegmentedTraceStore,
    store_key,
    write_segment,
)

__all__ = [
    "DISK_FAULT_KINDS",
    "DiskFaultEvent",
    "DiskFaultSpec",
    "ProgressJournal",
    "STORE_FORMAT",
    "SegmentStatus",
    "SegmentedTraceStore",
    "WriteFaultPlan",
    "inject_disk_fault",
    "simulate_trace_to_store",
    "store_key",
    "store_trace_digest",
    "write_segment",
]
