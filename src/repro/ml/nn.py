"""Multilayer perceptron for binary classification (Adam optimizer).

The paper's NN baseline: a small fully-connected network (the paper
explicitly excludes deep learning for overhead reasons), whose weighted
neurons "approximate non-linear functions of the input".
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, sigmoid
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive

__all__ = ["MLPClassifier"]


class MLPClassifier(BaseClassifier):
    """Fully-connected ReLU network with a single logit output.

    Parameters
    ----------
    hidden_layers:
        Sizes of hidden layers, e.g. ``(32, 16)``.
    learning_rate:
        Adam step size.
    epochs:
        Maximum number of passes over the training data.
    batch_size:
        Mini-batch size (clipped to the dataset size).
    l2:
        Weight decay applied to all weight matrices.
    class_weight:
        ``None`` or ``"balanced"``.
    early_stopping_fraction:
        Held-out fraction for early stopping (0 disables).
    patience:
        Early-stopping patience in epochs.
    random_state:
        Seed or generator for initialization and shuffling.
    """

    def __init__(
        self,
        *,
        hidden_layers: tuple[int, ...] = (32, 16),
        learning_rate: float = 1e-3,
        epochs: int = 80,
        batch_size: int = 256,
        l2: float = 1e-5,
        class_weight: str | None = "balanced",
        early_stopping_fraction: float = 0.1,
        patience: int = 10,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not hidden_layers or any(int(h) <= 0 for h in hidden_layers):
            raise ValueError(f"hidden_layers must be positive sizes, got {hidden_layers!r}")
        self.hidden_layers = tuple(int(h) for h in hidden_layers)
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.epochs = int(check_positive(epochs, "epochs"))
        self.batch_size = int(check_positive(batch_size, "batch_size"))
        self.l2 = float(l2)
        if class_weight not in (None, "balanced"):
            raise ValueError(f"class_weight must be None or 'balanced', got {class_weight!r}")
        self.class_weight = class_weight
        self.early_stopping_fraction = float(early_stopping_fraction)
        self.patience = int(check_positive(patience, "patience"))
        self.random_state = random_state
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = child_rng(self.random_state)
        sample_weight = self._sample_weights(y)

        X_val: np.ndarray | None = None
        y_val: np.ndarray | None = None
        if self.early_stopping_fraction > 0.0 and X.shape[0] >= 50:
            order = rng.permutation(X.shape[0])
            n_val = max(1, int(X.shape[0] * self.early_stopping_fraction))
            val_idx, train_idx = order[:n_val], order[n_val:]
            X_val, y_val = X[val_idx], y[val_idx]
            X, y, sample_weight = X[train_idx], y[train_idx], sample_weight[train_idx]

        sizes = [X.shape[1], *self.hidden_layers, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialization for ReLU
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        adam_t = 0

        best_loss = np.inf
        best_params: tuple[list[np.ndarray], list[np.ndarray]] | None = None
        epochs_since_best = 0
        n = X.shape[0]
        batch = min(self.batch_size, n)
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                grads_w, grads_b = self._backprop(X[idx], y[idx], sample_weight[idx])
                adam_t += 1
                for k in range(len(self._weights)):
                    grads_w[k] += self.l2 * self._weights[k]
                    m_w[k] = beta1 * m_w[k] + (1 - beta1) * grads_w[k]
                    v_w[k] = beta2 * v_w[k] + (1 - beta2) * grads_w[k] ** 2
                    m_b[k] = beta1 * m_b[k] + (1 - beta1) * grads_b[k]
                    v_b[k] = beta2 * v_b[k] + (1 - beta2) * grads_b[k] ** 2
                    m_w_hat = m_w[k] / (1 - beta1**adam_t)
                    v_w_hat = v_w[k] / (1 - beta2**adam_t)
                    m_b_hat = m_b[k] / (1 - beta1**adam_t)
                    v_b_hat = v_b[k] / (1 - beta2**adam_t)
                    self._weights[k] -= self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    self._biases[k] -= self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)
            self.n_iter_ = epoch + 1
            if X_val is not None and y_val is not None:
                val_loss = self._loss(X_val, y_val)
                if val_loss < best_loss - 1e-6:
                    best_loss = val_loss
                    best_params = (
                        [w.copy() for w in self._weights],
                        [b.copy() for b in self._biases],
                    )
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
                    if epochs_since_best >= self.patience:
                        break
        if best_params is not None:
            self._weights, self._biases = best_params

    def _decision_function(self, X: np.ndarray) -> np.ndarray:
        return self._forward(X)[-1].ravel()

    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> list[np.ndarray]:
        """Return activations per layer; the last entry is the raw logit."""
        activations = [X]
        out = X
        last = len(self._weights) - 1
        for k, (w, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ w + b
            if k != last:
                out = np.maximum(out, 0.0)  # ReLU
            activations.append(out)
        return activations

    def _backprop(
        self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        activations = self._forward(X)
        logits = activations[-1].ravel()
        probs = sigmoid(logits)
        # dL/dlogit for weighted binomial deviance.
        delta = (sample_weight * (probs - y) / X.shape[0]).reshape(-1, 1)
        grads_w: list[np.ndarray] = [np.empty(0)] * len(self._weights)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self._biases)
        for k in range(len(self._weights) - 1, -1, -1):
            grads_w[k] = activations[k].T @ delta
            grads_b[k] = delta.sum(axis=0)
            if k > 0:
                delta = (delta @ self._weights[k].T) * (activations[k] > 0)
        return grads_w, grads_b

    def _loss(self, X: np.ndarray, y: np.ndarray) -> float:
        probs = np.clip(sigmoid(self._forward(X)[-1].ravel()), 1e-12, 1 - 1e-12)
        return float(-(y * np.log(probs) + (1 - y) * np.log(1 - probs)).mean())

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(y.shape[0])
        counts = np.bincount(y, minlength=2).astype(float)
        weights = y.shape[0] / (2.0 * counts)
        return weights[y]
