"""Gradient-boosted decision trees for binary classification.

The paper's winning model: "a boosting-based model that is essentially an
ensemble of weak models, effective in tackling the variance-bias problem,
but computationally expensive".  Implementation notes:

* logistic (binomial deviance) loss, optimized with second-order
  (Newton-style) tree boosting;
* histogram-quantized features shared across all trees (fit once);
* shrinkage (``learning_rate``), row subsampling per tree, and optional
  class weighting for imbalanced data;
* optional early stopping on a held-out fraction of the training set.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, sigmoid
from repro.ml.kernels import FlatForest, flatten_ensemble, predict_raw
from repro.ml.tree import FeatureBinner, GradHessTree
from repro.utils.rng import child_rng
from repro.utils.validation import check_fraction, check_positive

__all__ = ["GradientBoostingClassifier"]


class GradientBoostingClassifier(BaseClassifier):
    """Binary GBDT with logistic loss.

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting rounds (trees).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of each tree.
    min_samples_leaf:
        Minimum samples per leaf.
    subsample:
        Fraction of rows sampled (without replacement) per tree.
    n_bins:
        Number of histogram bins for feature quantization.
    reg_lambda:
        L2 regularization on leaf values.
    class_weight:
        ``None`` or ``"balanced"`` (inverse-frequency sample weights).
    early_stopping_fraction:
        When > 0, that fraction of the training rows is held out and
        boosting stops after ``early_stopping_rounds`` rounds without
        improvement in held-out loss.
    random_state:
        Seed or generator for subsampling and the validation split.
    """

    def __init__(
        self,
        *,
        n_estimators: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 20,
        subsample: float = 0.8,
        n_bins: int = 64,
        reg_lambda: float = 1.0,
        class_weight: str | None = "balanced",
        early_stopping_fraction: float = 0.0,
        early_stopping_rounds: int = 20,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.n_estimators = int(check_positive(n_estimators, "n_estimators"))
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.max_depth = int(check_positive(max_depth, "max_depth"))
        self.min_samples_leaf = int(check_positive(min_samples_leaf, "min_samples_leaf"))
        self.subsample = check_fraction(subsample, "subsample")
        if self.subsample == 0.0:
            raise ValueError("subsample must be > 0")
        self.n_bins = int(n_bins)
        self.reg_lambda = reg_lambda
        if class_weight not in (None, "balanced"):
            raise ValueError(f"class_weight must be None or 'balanced', got {class_weight!r}")
        self.class_weight = class_weight
        self.early_stopping_fraction = check_fraction(
            early_stopping_fraction, "early_stopping_fraction"
        )
        self.early_stopping_rounds = int(check_positive(early_stopping_rounds, "early_stopping_rounds"))
        self.random_state = random_state
        self._binner: FeatureBinner | None = None
        self._trees: list[GradHessTree] = []
        self._flat: FlatForest | None = None
        self._base_score: float = 0.0
        self.n_estimators_: int = 0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._flat = None  # invalidate any previous fit's flat cache
        rng = child_rng(self.random_state)
        self._binner = FeatureBinner(self.n_bins)
        binned = self._binner.fit_transform(X)
        n = binned.shape[0]
        sample_weight = self._sample_weights(y)

        val_binned: np.ndarray | None = None
        val_y: np.ndarray | None = None
        if self.early_stopping_fraction > 0.0 and n >= 50:
            order = rng.permutation(n)
            n_val = max(1, int(n * self.early_stopping_fraction))
            val_idx, train_idx = order[:n_val], order[n_val:]
            val_binned, val_y = binned[val_idx], y[val_idx]
            binned, y = binned[train_idx], y[train_idx]
            sample_weight = sample_weight[train_idx]
            n = binned.shape[0]

        # Initial score: weighted log-odds of the positive class.
        pos = float(np.sum(sample_weight * y))
        neg = float(np.sum(sample_weight * (1 - y)))
        self._base_score = float(np.log((pos + 1e-12) / (neg + 1e-12)))
        raw = np.full(n, self._base_score)
        val_raw = (
            np.full(val_binned.shape[0], self._base_score)
            if val_binned is not None
            else None
        )

        self._trees = []
        best_val_loss = np.inf
        rounds_since_best = 0
        for _ in range(self.n_estimators):
            probs = sigmoid(raw)
            grad = sample_weight * (probs - y)
            hess = sample_weight * probs * (1.0 - probs)
            if self.subsample < 1.0:
                take = max(2 * self.min_samples_leaf, int(n * self.subsample))
                idx = rng.choice(n, size=min(take, n), replace=False)
            else:
                idx = np.arange(n)
            tree = GradHessTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
            )
            tree.fit(binned[idx], grad[idx], hess[idx], n_bins=self.n_bins)
            update = tree.predict_binned(binned)
            if not np.any(update):
                break  # tree degenerated to a stump with no signal
            raw += self.learning_rate * update
            self._trees.append(tree)

            if val_binned is not None and val_raw is not None and val_y is not None:
                val_raw += self.learning_rate * tree.predict_binned(val_binned)
                val_loss = _log_loss(val_y, sigmoid(val_raw))
                if val_loss < best_val_loss - 1e-7:
                    best_val_loss = val_loss
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        break
        self.n_estimators_ = len(self._trees)
        # Flatten once here: every subsequent predict call traverses the
        # contiguous ensemble arrays instead of re-walking tree objects.
        self._flat = flatten_ensemble(self._trees)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The flat cache is derived data; drop it so registry payloads
        # and checkpoints stay lean and format-stable.
        state.pop("_flat", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Rebuild the cache on unpickle (also upgrades pre-kernel
        # payloads that never carried ``_flat``).
        self._flat = flatten_ensemble(self.__dict__.get("_trees", []))

    def _decision_function(self, X: np.ndarray) -> np.ndarray:
        assert self._binner is not None
        binned = self._binner.transform(X)
        if self._flat is None and self._trees:
            # Trees installed without going through _fit/__setstate__
            # (hand-assembled ensembles in tests): flatten once, lazily.
            self._flat = flatten_ensemble(self._trees)
        return predict_raw(
            self._flat,
            binned,
            base_score=self._base_score,
            learning_rate=self.learning_rate,
        )

    def _decision_function_pertree(self, X: np.ndarray) -> np.ndarray:
        """Legacy per-tree scoring loop, kept as the kernel digest oracle.

        Tests and ``benchmarks/bench_hotpath.py`` compare the flattened
        kernels against this path; it must stay bit-identical to the
        pre-kernel implementation.
        """
        assert self._binner is not None
        binned = self._binner.transform(X)
        raw = np.full(binned.shape[0], self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict_binned(binned)
        return raw

    def staged_decision_function(self, X: np.ndarray):
        """Yield decision scores after each boosting round (for diagnostics)."""
        self._check_fitted()
        assert self._binner is not None
        binned = self._binner.transform(np.asarray(X, dtype=float))
        raw = np.full(binned.shape[0], self._base_score)
        for tree in self._trees:
            raw = raw + self.learning_rate * tree.predict_binned(binned)
            yield raw.copy()

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(y.shape[0])
        counts = np.bincount(y, minlength=2).astype(float)
        weights = y.shape[0] / (2.0 * counts)
        return weights[y]


def _log_loss(y: np.ndarray, p: np.ndarray) -> float:
    p = np.clip(p, 1e-12, 1.0 - 1e-12)
    return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())
