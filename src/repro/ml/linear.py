"""Logistic regression trained with mini-batch SGD.

The paper's LR baseline: "a simple and fast model for understanding the
influence of several independent variables but limited by the linear
function between inputs and outputs".
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, sigmoid
from repro.utils.rng import child_rng
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["LogisticRegression"]


class LogisticRegression(BaseClassifier):
    """Binary logistic regression with L2 regularization.

    Parameters
    ----------
    learning_rate:
        Initial SGD step size; decays as ``1 / (1 + decay * epoch)``.
    l2:
        L2 penalty strength applied to weights (not the intercept).
    epochs:
        Number of passes over the training data.
    batch_size:
        Mini-batch size; clipped to the dataset size.
    class_weight:
        ``None`` for unweighted loss or ``"balanced"`` to weight classes
        inversely proportional to their frequency.
    tol:
        Stop early when the epoch-mean absolute weight update falls below
        this threshold.
    random_state:
        Seed or generator driving data shuffling.
    """

    def __init__(
        self,
        *,
        learning_rate: float = 0.1,
        l2: float = 1e-4,
        epochs: int = 60,
        batch_size: int = 256,
        class_weight: str | None = None,
        tol: float = 1e-6,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.l2 = check_nonnegative(l2, "l2")
        self.epochs = int(check_positive(epochs, "epochs"))
        self.batch_size = int(check_positive(batch_size, "batch_size"))
        if class_weight not in (None, "balanced"):
            raise ValueError(f"class_weight must be None or 'balanced', got {class_weight!r}")
        self.class_weight = class_weight
        self.tol = check_nonnegative(tol, "tol")
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = child_rng(self.random_state)
        n, d = X.shape
        weights = np.zeros(d)
        intercept = 0.0
        sample_weight = self._sample_weights(y)
        batch = min(self.batch_size, n)
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            lr = self.learning_rate / (1.0 + 0.05 * epoch)
            total_update = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb, wb = X[idx], y[idx], sample_weight[idx]
                probs = sigmoid(xb @ weights + intercept)
                # Weighted gradient of the negative log-likelihood.
                residual = wb * (probs - yb)
                grad_w = xb.T @ residual / idx.size + self.l2 * weights
                grad_b = residual.mean()
                weights -= lr * grad_w
                intercept -= lr * grad_b
                total_update += lr * float(np.abs(grad_w).sum() + abs(grad_b))
            self.n_iter_ = epoch + 1
            if total_update / max(1, n // batch) < self.tol:
                break
        self.coef_ = weights
        self.intercept_ = float(intercept)

    def _decision_function(self, X: np.ndarray) -> np.ndarray:
        assert self.coef_ is not None
        return X @ self.coef_ + self.intercept_

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(y.shape[0])
        counts = np.bincount(y, minlength=2).astype(float)
        # Inverse-frequency weights normalised to mean 1.
        weights = y.shape[0] / (2.0 * counts)
        return weights[y]
