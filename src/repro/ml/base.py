"""Estimator base classes and input validation helpers."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import NotFittedError, ValidationError

__all__ = ["check_array", "check_X_y", "BaseClassifier"]


def check_array(X: np.ndarray, *, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a 2-D float array with finite values."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={X.ndim}")
    if X.shape[0] == 0:
        raise ValidationError(f"{name} must have at least one row")
    if not np.isfinite(X).all():
        raise ValidationError(f"{name} contains NaN or infinity")
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and a binary {0, 1} label vector."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValidationError(f"y must be 1-D, got ndim={y.ndim}")
    if y.shape[0] != X.shape[0]:
        raise ValidationError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    y = y.astype(int)
    labels = np.unique(y)
    if not np.isin(labels, (0, 1)).all():
        raise ValidationError(f"y must be binary {{0, 1}}, got labels {labels}")
    return X, y


class BaseClassifier:
    """Shared plumbing for the binary classifiers in this package.

    Subclasses implement ``_fit(X, y)`` and ``_decision_function(X)``; this
    base provides validated ``fit``, probability output via the logistic
    link, thresholded ``predict``, and fitted-state checks.
    """

    #: Decision threshold applied to ``predict_proba`` by ``predict``.
    threshold: float = 0.5

    def __init__(self) -> None:
        self._fitted = False
        self._n_features: int | None = None

    # ------------------------------------------------------------------
    # Template methods
    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _decision_function(self, X: np.ndarray) -> np.ndarray:
        """Real-valued score; larger means more likely class 1."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        """Fit the classifier on ``X`` (n x d) and binary labels ``y``."""
        X, y = check_X_y(X, y)
        if np.unique(y).size < 2:
            raise ValidationError(
                "training data must contain both classes; got a single class"
            )
        self._n_features = X.shape[1]
        self._fit(X, y)
        self._fitted = True
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw decision scores for each row of ``X``."""
        self._check_fitted()
        X = self._check_shape(check_array(X))
        return self._decision_function(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of class 1 for each row of ``X`` (shape ``(n,)``)."""
        scores = self.decision_function(X)
        return sigmoid(scores)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1} for each row of ``X``."""
        return (self.predict_proba(X) >= self.threshold).astype(int)

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Ranking scores in ``[0, 1]``; larger means more likely class 1.

        The uniform accessor the serving layer uses to rank alerts: every
        classifier returns its class-1 probability (a monotone transform
        of the raw margin), so scores are comparable across thresholds and
        a sort by ``decision_scores`` is a sort by model confidence.
        """
        return self.predict_proba(X)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before prediction"
            )

    def _check_shape(self, X: np.ndarray) -> np.ndarray:
        if self._n_features is not None and X.shape[1] != self._n_features:
            raise ValidationError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        return X


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out
