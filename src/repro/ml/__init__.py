"""From-scratch machine-learning substrate (numpy only).

The paper trains Logistic Regression, Gradient Boosting Decision Trees,
an RBF-kernel SVM, and a Neural Network.  None of the usual libraries are
available offline, so this package implements them — plus the supporting
cast (metrics, scalers/encoders, imbalance resampling, k-means, splits,
and a small autoregressive forecaster for the paper's Discussion section).

All estimators follow the familiar ``fit`` / ``predict`` /
``predict_proba`` convention and validate their inputs.
"""

from repro.ml.base import BaseClassifier, check_X_y, check_array
from repro.ml.cluster import KMeans
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.kernels import (
    KERNEL_BACKENDS,
    FlatForest,
    flatten_ensemble,
    get_backend,
    numba_available,
    set_backend,
    use_backend,
)
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import time_ordered_split, train_test_split
from repro.ml.nn import MLPClassifier
from repro.ml.preprocessing import LabelEncoder, OneHotEncoder, StandardScaler
from repro.ml.sampling import KMeansUnderSampler, RandomUnderSampler, SMOTE
from repro.ml.svm import SVC
from repro.ml.timeseries import ARForecaster
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseClassifier",
    "check_X_y",
    "check_array",
    "KMeans",
    "GradientBoostingClassifier",
    "KERNEL_BACKENDS",
    "FlatForest",
    "flatten_ensemble",
    "get_backend",
    "numba_available",
    "set_backend",
    "use_backend",
    "LogisticRegression",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "precision_recall_f1",
    "precision_score",
    "recall_score",
    "time_ordered_split",
    "train_test_split",
    "MLPClassifier",
    "LabelEncoder",
    "OneHotEncoder",
    "StandardScaler",
    "KMeansUnderSampler",
    "RandomUnderSampler",
    "SMOTE",
    "SVC",
    "ARForecaster",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
]
