"""Autoregressive time-series forecasting.

Paper, Discussion (Section VIII): features such as the temperature and
power profile of the upcoming run "cannot be known a priori" and are
forecast with time-series tools (ARMA/ARIMA-family).  :class:`ARForecaster`
is an AR(p) model fit by least squares with optional differencing — i.e.
an ARI(p, d) model — sufficient to forecast the slowly-varying node
temperature and power series the TwoStage method consumes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import NotFittedError, ValidationError
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["ARForecaster"]


class ARForecaster:
    """AR(p) forecaster with optional differencing (ARI(p, d)).

    Parameters
    ----------
    order:
        Number of autoregressive lags ``p``.
    diff:
        Differencing order ``d`` (0 or 1).
    ridge:
        Small L2 regularizer on the lag coefficients for numerical
        stability on near-constant series.
    """

    def __init__(self, order: int = 4, *, diff: int = 0, ridge: float = 1e-6) -> None:
        self.order = int(check_positive(order, "order"))
        if diff not in (0, 1):
            raise ValidationError(f"diff must be 0 or 1, got {diff}")
        self.diff = diff
        self.ridge = check_nonnegative(ridge, "ridge")
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._history: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "ARForecaster":
        """Fit lag coefficients to ``series`` by ridge least squares."""
        series = np.asarray(series, dtype=float).ravel()
        if series.size < self.order + self.diff + 2:
            raise ValidationError(
                f"series too short for AR({self.order}), d={self.diff}: "
                f"need >= {self.order + self.diff + 2}, got {series.size}"
            )
        work = np.diff(series) if self.diff else series
        p = self.order
        rows = work.size - p
        lagged = np.empty((rows, p))
        for k in range(p):
            lagged[:, k] = work[p - 1 - k : work.size - 1 - k]
        targets = work[p:]
        design = np.hstack([lagged, np.ones((rows, 1))])
        gram = design.T @ design + self.ridge * np.eye(p + 1)
        solution = np.linalg.solve(gram, design.T @ targets)
        self.coef_ = solution[:p]
        self.intercept_ = float(solution[p])
        self._history = series.copy()
        return self

    def forecast(self, steps: int, *, history: np.ndarray | None = None) -> np.ndarray:
        """Forecast ``steps`` future values.

        ``history`` overrides the training series as the starting context
        (useful for applying one fitted model across nodes).
        """
        if self.coef_ is None:
            raise NotFittedError("ARForecaster is not fitted")
        check_positive(steps, "steps")
        context = np.asarray(
            history if history is not None else self._history, dtype=float
        ).ravel()
        if context.size < self.order + self.diff:
            raise ValidationError(
                f"history must hold at least {self.order + self.diff} values"
            )
        level = float(context[-1])
        work = np.diff(context) if self.diff else context
        window = list(work[-self.order :])
        out = np.empty(int(steps))
        for t in range(int(steps)):
            lags = np.asarray(window[::-1])
            nxt = float(lags @ self.coef_ + self.intercept_)
            if self.diff:
                level += nxt
                out[t] = level
            else:
                out[t] = nxt
            window.pop(0)
            window.append(nxt)
        return out

    def fitted_residuals(self) -> np.ndarray:
        """In-sample one-step-ahead residuals of the training series."""
        if self.coef_ is None or self._history is None:
            raise NotFittedError("ARForecaster is not fitted")
        series = self._history
        work = np.diff(series) if self.diff else series
        p = self.order
        preds = np.empty(work.size - p)
        for t in range(p, work.size):
            lags = work[t - p : t][::-1]  # most recent lag first
            preds[t - p] = float(lags @ self.coef_ + self.intercept_)
        return work[p:] - preds
