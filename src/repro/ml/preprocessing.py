"""Feature preprocessing: scaling and categorical encoding."""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_array
from repro.utils.errors import NotFittedError, ValidationError

__all__ = ["StandardScaler", "LabelEncoder", "OneHotEncoder"]


class StandardScaler:
    """Standardize columns to zero mean and unit variance.

    Constant columns are left centred but unscaled (their std is treated
    as 1) so downstream models never see division-by-zero artefacts.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and scale from ``X``."""
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned standardization to ``X``."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValidationError(
                f"expected {self.mean_.shape[0]} columns, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return the transformed matrix."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = check_array(X)
        return X * self.scale_ + self.mean_


class LabelEncoder:
    """Map arbitrary hashable labels to dense integer codes.

    Unknown labels at transform time map to the reserved code ``-1`` by
    default (useful for applications first seen in a test window), or raise
    when ``allow_unknown=False``.
    """

    def __init__(self, *, allow_unknown: bool = True) -> None:
        self.allow_unknown = allow_unknown
        self.classes_: list | None = None
        self._index: dict | None = None

    def fit(self, labels) -> "LabelEncoder":
        """Learn the vocabulary from ``labels`` (order of first appearance)."""
        index: dict = {}
        for label in labels:
            if label not in index:
                index[label] = len(index)
        self._index = index
        self.classes_ = list(index)
        return self

    def transform(self, labels) -> np.ndarray:
        """Encode ``labels``; unknowns become -1 (or raise)."""
        if self._index is None:
            raise NotFittedError("LabelEncoder is not fitted")
        codes = np.empty(len(labels), dtype=int)
        for i, label in enumerate(labels):
            code = self._index.get(label)
            if code is None:
                if not self.allow_unknown:
                    raise ValidationError(f"unknown label: {label!r}")
                code = -1
            codes[i] = code
        return codes

    def fit_transform(self, labels) -> np.ndarray:
        """Fit on ``labels`` and return their codes."""
        return self.fit(labels).transform(labels)

    def inverse_transform(self, codes: np.ndarray):
        """Decode integer codes back to the original labels."""
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted")
        result = []
        for code in np.asarray(codes, dtype=int).ravel():
            if code == -1:
                result.append(None)
            elif 0 <= code < len(self.classes_):
                result.append(self.classes_[code])
            else:
                raise ValidationError(f"code out of range: {code}")
        return result


class OneHotEncoder:
    """One-hot encode an integer-coded categorical column.

    Codes outside the fitted vocabulary (e.g. the -1 "unknown" code from
    :class:`LabelEncoder`) encode to the all-zeros row.
    """

    def __init__(self) -> None:
        self.categories_: np.ndarray | None = None
        self._position: dict[int, int] | None = None

    def fit(self, codes: np.ndarray) -> "OneHotEncoder":
        """Learn the category set from ``codes`` (negatives excluded)."""
        codes = np.asarray(codes, dtype=int).ravel()
        categories = np.unique(codes[codes >= 0])
        self.categories_ = categories
        self._position = {int(c): i for i, c in enumerate(categories)}
        return self

    def transform(self, codes: np.ndarray) -> np.ndarray:
        """Return the ``(n, n_categories)`` one-hot matrix for ``codes``."""
        if self.categories_ is None or self._position is None:
            raise NotFittedError("OneHotEncoder is not fitted")
        codes = np.asarray(codes, dtype=int).ravel()
        out = np.zeros((codes.size, self.categories_.size), dtype=float)
        for i, code in enumerate(codes):
            pos = self._position.get(int(code))
            if pos is not None:
                out[i, pos] = 1.0
        return out

    def fit_transform(self, codes: np.ndarray) -> np.ndarray:
        """Fit on ``codes`` and return their one-hot matrix."""
        return self.fit(codes).transform(codes)
