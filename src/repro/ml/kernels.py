"""Hot-path scoring kernels: flattened GBDT ensembles + backend dispatch.

The from-scratch :class:`~repro.ml.gbdt.GradientBoostingClassifier`
historically scored with a Python loop over its trees, each tree doing a
vectorized frontier walk — O(n_trees * depth) small numpy kernel
launches per batch.  This module flattens a fitted ensemble into one set
of contiguous ensemble-level arrays (:class:`FlatForest`) and traverses
*all* trees level-synchronously in O(depth) large numpy ops, which is
where the serving tier's ≥5x single-core micro-batch scoring speedup
comes from (``benchmarks/bench_hotpath.py``).  Bulk batches (at or above
:data:`TREE_MAJOR_MIN_ROWS` rows) instead sweep the same flat arrays
tree-major, where the level-synchronous temporaries would outgrow cache;
the two sweeps are bit-identical by construction.

Exactness contract (enforced by tests and the determinism gate):

* The traversal is pure integer comparison on quantized bin codes, so
  every sample lands on exactly the node the per-tree walk would reach.
* Scores accumulate in boosting order with the same per-element float64
  operations the per-tree loop performed (``raw += lr * leaf_value``),
  so flattened scores are **bit-identical** to the legacy path — pinned
  replay/gateway/golden digests must not move.
* The optional numba backend runs the same scalar recurrence per row
  (no fastmath, no reassociation), so it is bit-identical to numpy too.
  Where a future backend cannot claim exactness it must document its
  tolerance in DESIGN.md §15 instead of silently drifting.

Backend selection is process-global (:func:`set_backend` /
:func:`get_backend`, CLI ``--backend {numpy,numba}``).  Requesting
``numba`` on a machine without numba falls back to numpy with a
one-line :class:`KernelBackendWarning` — the numpy path is always the
digest oracle, so the fallback changes nothing but speed.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError

__all__ = [
    "KERNEL_BACKENDS",
    "KernelBackendWarning",
    "FlatForest",
    "flatten_ensemble",
    "predict_raw",
    "traverse",
    "numba_available",
    "set_backend",
    "get_backend",
    "use_backend",
]

#: Selectable scoring backends, in fallback order.
KERNEL_BACKENDS = ("numpy", "numba")

#: Rows per traversal chunk: bounds the (n_trees, chunk) temporaries so
#: huge benchmark batches cannot balloon memory.  Chunking is invisible
#: to results — rows are independent.
CHUNK_ROWS = 16384

#: At or above this many rows the numpy kernel sweeps tree-major instead
#: of level-synchronously: the (n_trees, n_rows) per-level temporaries of
#: the all-trees pass outgrow cache on bulk batches, while micro-batches
#: (the serving hot path) are dominated by per-tree Python overhead that
#: the level-synchronous pass eliminates.  Both sweeps select identical
#: leaves and accumulate in identical order, so the switch can never
#: change a score bit.
TREE_MAJOR_MIN_ROWS = 4096


class KernelBackendWarning(RuntimeWarning):
    """A requested scoring backend is unavailable; numpy is used instead."""


_BACKEND = "numpy"
_NUMBA_OK: bool | None = None
_NUMBA_KERNEL = None


def numba_available() -> bool:
    """Whether the optional numba backend can be imported (cached)."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except Exception:  # pragma: no cover - depends on environment
            _NUMBA_OK = False
    return _NUMBA_OK


def set_backend(name: str) -> str:
    """Select the process-wide scoring backend; returns the effective one.

    Unknown names raise :class:`~repro.utils.errors.ValidationError`.
    Requesting ``numba`` without numba installed warns once
    (:class:`KernelBackendWarning`) and keeps numpy — scores are
    bit-identical either way, so the fallback is purely a speed choice.
    """
    global _BACKEND
    if name not in KERNEL_BACKENDS:
        raise ValidationError(
            f"unknown scoring backend: {name!r}; options: {KERNEL_BACKENDS}"
        )
    if name == "numba" and not numba_available():
        warnings.warn(
            "scoring backend 'numba' unavailable (numba is not importable); "
            "falling back to the bit-identical 'numpy' kernel",
            KernelBackendWarning,
            stacklevel=2,
        )
        name = "numpy"
    _BACKEND = name
    return _BACKEND


def get_backend() -> str:
    """The currently selected scoring backend name."""
    return _BACKEND


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily select a backend (tests, determinism parity legs)."""
    previous = _BACKEND
    try:
        yield set_backend(name)
    finally:
        set_backend(previous)


@dataclass(frozen=True)
class FlatForest:
    """A fitted GBDT ensemble flattened into contiguous node arrays.

    Node ``k`` of tree ``t`` lives at global index ``offsets[t] + k``;
    ``left``/``right`` already hold *global* child indices, so one
    traversal loop serves every tree.  Leaves have ``feature == -1``.
    """

    #: Split feature per node (int32; -1 marks a leaf).
    feature: np.ndarray
    #: Inclusive bin-code threshold per node (go left when code <= it).
    bin_threshold: np.ndarray
    #: Global left/right child index per node (int32; -1 at leaves).
    left: np.ndarray
    right: np.ndarray
    #: Leaf/node value per node (float64; exactly the per-tree values).
    value: np.ndarray
    #: Per-tree node offsets, length ``n_trees + 1`` (int32).
    offsets: np.ndarray
    #: Upper bound on any tree's depth (traversal pass count).
    max_depth: int

    @property
    def n_trees(self) -> int:
        """Number of trees in the flattened ensemble."""
        return self.offsets.shape[0] - 1

    @property
    def n_nodes(self) -> int:
        """Total node count across every tree."""
        return self.feature.shape[0]


def flatten_ensemble(trees) -> FlatForest | None:
    """Flatten fitted :class:`~repro.ml.tree.GradHessTree`s into arrays.

    Returns ``None`` for an empty ensemble (every tree degenerated during
    boosting); callers then score the base value alone, exactly as the
    per-tree loop did.
    """
    if not trees:
        return None
    feature_parts: list[np.ndarray] = []
    threshold_parts: list[np.ndarray] = []
    left_parts: list[np.ndarray] = []
    right_parts: list[np.ndarray] = []
    value_parts: list[np.ndarray] = []
    offsets = np.zeros(len(trees) + 1, dtype=np.int32)
    max_depth = 0
    for t, tree in enumerate(trees):
        arrays = tree.arrays
        feature, threshold, left, right, value = arrays.as_numpy()
        shift = offsets[t]
        feature_parts.append(feature)
        threshold_parts.append(threshold)
        # Shift child pointers to global indices; keep -1 sentinels.
        left_parts.append(np.where(left >= 0, left + shift, left))
        right_parts.append(np.where(right >= 0, right + shift, right))
        value_parts.append(value)
        offsets[t + 1] = shift + feature.shape[0]
        max_depth = max(max_depth, int(tree.max_depth))
    return FlatForest(
        feature=np.ascontiguousarray(np.concatenate(feature_parts)),
        bin_threshold=np.ascontiguousarray(np.concatenate(threshold_parts)),
        left=np.ascontiguousarray(np.concatenate(left_parts)),
        right=np.ascontiguousarray(np.concatenate(right_parts)),
        value=np.ascontiguousarray(np.concatenate(value_parts)),
        offsets=offsets,
        max_depth=max_depth,
    )


def traverse(forest: FlatForest, binned: np.ndarray) -> np.ndarray:
    """Leaf index per (tree, row): one level-synchronous pass per depth.

    Returns an int32 array of shape ``(n_trees, n_rows)`` of *global*
    node indices.  Every sample advances one level per pass across all
    trees simultaneously; a tree's depth bounds its passes, so rows
    already at a leaf simply hold position.
    """
    if binned.dtype != np.uint8:
        raise ValidationError("binned matrix must be uint8 bin codes")
    n_rows = binned.shape[0]
    positions = np.empty((forest.n_trees, n_rows), dtype=np.int32)
    for start in range(0, n_rows, CHUNK_ROWS):
        stop = min(start + CHUNK_ROWS, n_rows)
        positions[:, start:stop] = _traverse_chunk(forest, binned[start:stop])
    return positions


def _traverse_chunk(forest: FlatForest, binned: np.ndarray) -> np.ndarray:
    n_rows = binned.shape[0]
    pos = np.repeat(
        forest.offsets[:-1].astype(np.intp)[:, None], n_rows, axis=1
    )
    rows = np.arange(n_rows)[None, :]
    for _ in range(forest.max_depth + 1):
        feat = forest.feature[pos]
        internal = feat >= 0
        if not internal.any():
            break
        # Leaf positions gather feature 0 harmlessly; the np.where below
        # discards their (meaningless) step.
        codes = binned[rows, np.where(internal, feat, 0)]
        go_left = codes <= forest.bin_threshold[pos]
        step = np.where(go_left, forest.left[pos], forest.right[pos])
        pos = np.where(internal, step, pos)
    return pos


def _traverse_tree(forest: FlatForest, binned: np.ndarray, t: int) -> np.ndarray:
    """Leaf index per row for one tree: a frontier walk over flat arrays.

    Rows that reach a leaf drop out of later passes (the ``nonzero``
    compaction), so each level only touches still-descending rows —
    the same access pattern ``GradHessTree.predict_binned`` uses, minus
    its per-call list-to-array conversions.
    """
    # intp positions: numpy re-casts any other index dtype on every
    # gather, which would dominate the bulk path.
    pos = np.full(binned.shape[0], forest.offsets[t], dtype=np.intp)
    for _ in range(forest.max_depth + 1):
        internal = forest.feature[pos] >= 0
        if not internal.any():
            break
        idx = np.nonzero(internal)[0]
        at = pos[idx]
        codes = binned[idx, forest.feature[at]]
        go_left = codes <= forest.bin_threshold[at]
        pos[idx] = np.where(go_left, forest.left[at], forest.right[at])
    return pos


def _predict_raw_numpy(
    forest: FlatForest,
    binned: np.ndarray,
    *,
    base_score: float,
    learning_rate: float,
) -> np.ndarray:
    if binned.dtype != np.uint8:
        raise ValidationError("binned matrix must be uint8 bin codes")
    raw = np.full(binned.shape[0], base_score)
    # Accumulate in boosting order with the identical per-element float64
    # op the per-tree loop used — this is what makes scores bit-exact.
    if binned.shape[0] >= TREE_MAJOR_MIN_ROWS:
        for t in range(forest.n_trees):
            raw += learning_rate * forest.value[_traverse_tree(forest, binned, t)]
        return raw
    positions = traverse(forest, binned)
    for t in range(forest.n_trees):
        raw += learning_rate * forest.value[positions[t]]
    return raw


def _numba_kernel():  # pragma: no cover - requires numba
    """Compile (once) the scalar per-row traversal kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        from numba import njit

        @njit(cache=False)
        def kernel(feature, threshold, left, right, value, roots, binned, base, lr, out):
            n_rows = binned.shape[0]
            n_trees = roots.shape[0]
            for i in range(n_rows):
                acc = base
                for t in range(n_trees):
                    node = roots[t]
                    while feature[node] >= 0:
                        if binned[i, feature[node]] <= threshold[node]:
                            node = left[node]
                        else:
                            node = right[node]
                    # Same op order as the numpy path: acc += lr * value.
                    acc = acc + lr * value[node]
                out[i] = acc

        _NUMBA_KERNEL = kernel
    return _NUMBA_KERNEL


def _predict_raw_numba(
    forest: FlatForest,
    binned: np.ndarray,
    *,
    base_score: float,
    learning_rate: float,
) -> np.ndarray:  # pragma: no cover - requires numba
    out = np.empty(binned.shape[0], dtype=np.float64)
    _numba_kernel()(
        forest.feature,
        forest.bin_threshold,
        forest.left,
        forest.right,
        forest.value,
        np.ascontiguousarray(forest.offsets[:-1]),
        np.ascontiguousarray(binned),
        float(base_score),
        float(learning_rate),
        out,
    )
    return out


def predict_raw(
    forest: FlatForest | None,
    binned: np.ndarray,
    *,
    base_score: float,
    learning_rate: float,
    backend: str | None = None,
) -> np.ndarray:
    """Raw ensemble margin per row: ``base + lr * sum(leaf values)``.

    ``backend=None`` uses the process-wide selection; scores are
    bit-identical across backends (the numpy path is the oracle).
    """
    if forest is None:
        return np.full(binned.shape[0], base_score)
    chosen = backend if backend is not None else _BACKEND
    if chosen not in KERNEL_BACKENDS:
        raise ValidationError(
            f"unknown scoring backend: {chosen!r}; options: {KERNEL_BACKENDS}"
        )
    if chosen == "numba" and numba_available():  # pragma: no cover
        return _predict_raw_numba(
            forest, binned, base_score=base_score, learning_rate=learning_rate
        )
    return _predict_raw_numpy(
        forest, binned, base_score=base_score, learning_rate=learning_rate
    )
