"""Histogram-based CART trees (regression and classification).

These trees are the weak learners inside
:class:`repro.ml.gbdt.GradientBoostingClassifier`.  Following the design of
modern boosting libraries, features are quantized into a small number of
bins once, and each split is found by accumulating gradient/hessian
histograms per feature — O(n_bins) candidate splits per feature instead of
O(n) — which keeps from-scratch boosting fast enough for the paper's
datasets.

The split objective is the second-order (XGBoost-style) gain

    gain = GL^2/(HL + lam) + GR^2/(HR + lam) - G^2/(H + lam)

with leaf value ``-G / (H + lam)``.  Plain squared-error regression is the
special case ``g = -y, h = 1`` (so the classes here serve both as public
estimators and as the boosting engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BaseClassifier, check_array, check_X_y
from repro.utils.errors import NotFittedError, ValidationError
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["FeatureBinner", "GradHessTree", "DecisionTreeRegressor", "DecisionTreeClassifier"]


class FeatureBinner:
    """Quantile-based feature quantizer shared by trees in one ensemble."""

    def __init__(self, n_bins: int = 64) -> None:
        if not 2 <= n_bins <= 256:
            raise ValidationError(f"n_bins must be in [2, 256], got {n_bins}")
        self.n_bins = int(n_bins)
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        """Compute per-feature bin edges from (a subsample of) ``X``."""
        X = check_array(X)
        sample = X
        if X.shape[0] > 100_000:
            step = X.shape[0] // 100_000 + 1
            sample = X[::step]
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        edges = []
        for j in range(X.shape[1]):
            col_edges = np.unique(np.quantile(sample[:, j], quantiles))
            edges.append(col_edges)
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map ``X`` to uint8 bin codes, one column per feature."""
        if self.edges_ is None:
            raise NotFittedError("FeatureBinner is not fitted")
        X = check_array(X)
        if X.shape[1] != len(self.edges_):
            raise ValidationError(
                f"expected {len(self.edges_)} features, got {X.shape[1]}"
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for j, col_edges in enumerate(self.edges_):
            codes[:, j] = np.searchsorted(col_edges, X[:, j], side="right")
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its bin codes."""
        return self.fit(X).transform(X)

    def bin_upper_value(self, feature: int, bin_index: int) -> float:
        """Raw-value threshold equivalent to "bin <= bin_index"."""
        if self.edges_ is None:
            raise NotFittedError("FeatureBinner is not fitted")
        edges = self.edges_[feature]
        if bin_index >= edges.size:
            return float("inf")
        return float(edges[bin_index])


@dataclass
class _TreeArrays:
    """Flat array representation of a fitted tree."""

    feature: list[int] = field(default_factory=list)
    bin_threshold: list[int] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[float] = field(default_factory=list)

    def add_node(self) -> int:
        self.feature.append(-1)
        self.bin_threshold.append(-1)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1

    def as_numpy(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Export node lists as typed arrays for ensemble flattening.

        Returns ``(feature, bin_threshold, left, right, value)`` with
        int32 structure arrays and float64 values — the dtypes
        :mod:`repro.ml.kernels` traverses.
        """
        return (
            np.asarray(self.feature, dtype=np.int32),
            np.asarray(self.bin_threshold, dtype=np.int32),
            np.asarray(self.left, dtype=np.int32),
            np.asarray(self.right, dtype=np.int32),
            np.asarray(self.value, dtype=np.float64),
        )


class GradHessTree:
    """One regression tree fit to gradients/hessians on binned features."""

    def __init__(
        self,
        *,
        max_depth: int = 4,
        min_samples_leaf: int = 20,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-7,
    ) -> None:
        self.max_depth = int(check_positive(max_depth, "max_depth"))
        self.min_samples_leaf = int(check_positive(min_samples_leaf, "min_samples_leaf"))
        self.reg_lambda = check_nonnegative(reg_lambda, "reg_lambda")
        self.min_gain = check_nonnegative(min_gain, "min_gain")
        self._arrays: _TreeArrays | None = None
        self._n_bins: int = 0

    @property
    def n_nodes(self) -> int:
        """Number of nodes (internal + leaves) in the fitted tree."""
        if self._arrays is None:
            raise NotFittedError("tree is not fitted")
        return len(self._arrays.feature)

    @property
    def arrays(self) -> _TreeArrays:
        """The fitted node arrays (for ensemble flattening)."""
        if self._arrays is None:
            raise NotFittedError("tree is not fitted")
        return self._arrays

    def fit(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        *,
        n_bins: int,
    ) -> "GradHessTree":
        """Grow the tree on bin codes ``binned`` and per-sample grad/hess."""
        if binned.dtype != np.uint8:
            raise ValidationError("binned matrix must be uint8 bin codes")
        self._n_bins = int(n_bins)
        self._arrays = _TreeArrays()
        root = self._arrays.add_node()
        indices = np.arange(binned.shape[0])
        self._grow(binned, grad, hess, indices, node=root, depth=0)
        return self

    def _leaf_value(self, g_sum: float, h_sum: float) -> float:
        return -g_sum / (h_sum + self.reg_lambda)

    def _grow(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        *,
        node: int,
        depth: int,
    ) -> None:
        assert self._arrays is not None
        g = grad[indices]
        h = hess[indices]
        g_sum = float(g.sum())
        h_sum = float(h.sum())
        self._arrays.value[node] = self._leaf_value(g_sum, h_sum)
        if depth >= self.max_depth or indices.size < 2 * self.min_samples_leaf:
            return
        best = self._best_split(binned, indices, g, h, g_sum, h_sum)
        if best is None:
            return
        feature, bin_threshold = best
        go_left = binned[indices, feature] <= bin_threshold
        left_idx = indices[go_left]
        right_idx = indices[~go_left]
        if left_idx.size < self.min_samples_leaf or right_idx.size < self.min_samples_leaf:
            return
        left = self._arrays.add_node()
        right = self._arrays.add_node()
        self._arrays.feature[node] = feature
        self._arrays.bin_threshold[node] = bin_threshold
        self._arrays.left[node] = left
        self._arrays.right[node] = right
        self._grow(binned, grad, hess, left_idx, node=left, depth=depth + 1)
        self._grow(binned, grad, hess, right_idx, node=right, depth=depth + 1)

    def _best_split(
        self,
        binned: np.ndarray,
        indices: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        g_sum: float,
        h_sum: float,
    ) -> tuple[int, int] | None:
        lam = self.reg_lambda
        parent_score = g_sum**2 / (h_sum + lam)
        best_gain = self.min_gain
        best: tuple[int, int] | None = None
        rows = binned[indices]
        for feature in range(binned.shape[1]):
            codes = rows[:, feature]
            g_hist = np.bincount(codes, weights=g, minlength=self._n_bins)
            h_hist = np.bincount(codes, weights=h, minlength=self._n_bins)
            n_hist = np.bincount(codes, minlength=self._n_bins)
            gl = np.cumsum(g_hist)[:-1]
            hl = np.cumsum(h_hist)[:-1]
            nl = np.cumsum(n_hist)[:-1]
            gr = g_sum - gl
            hr = h_sum - hl
            nr = indices.size - nl
            valid = (nl >= self.min_samples_leaf) & (nr >= self.min_samples_leaf)
            if not valid.any():
                continue
            # With lam == 0 an empty side has hl/hr == 0; those candidates
            # are masked out below, so silence the harmless 0/0.
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = gl**2 / (hl + lam) + gr**2 / (hr + lam) - parent_score
            gains[~valid | ~np.isfinite(gains)] = -np.inf
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                best_gain = float(gains[k])
                best = (feature, k)
        return best

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Predict from bin codes via vectorized frontier traversal."""
        if self._arrays is None:
            raise NotFittedError("tree is not fitted")
        arrays = self._arrays
        feature = np.asarray(arrays.feature)
        threshold = np.asarray(arrays.bin_threshold)
        left = np.asarray(arrays.left)
        right = np.asarray(arrays.right)
        value = np.asarray(arrays.value)
        position = np.zeros(binned.shape[0], dtype=int)
        # Each pass advances every sample one level; tree depth bounds passes.
        for _ in range(self.max_depth + 1):
            at_internal = feature[position] >= 0
            if not at_internal.any():
                break
            idx = np.nonzero(at_internal)[0]
            pos = position[idx]
            codes = binned[idx, feature[pos]]
            go_left = codes <= threshold[pos]
            position[idx] = np.where(go_left, left[pos], right[pos])
        return value[position]


class DecisionTreeRegressor:
    """Least-squares regression tree on raw (unbinned) feature matrices.

    A thin public wrapper around :class:`GradHessTree` using the identity
    ``g = -y, h = 1`` under which the second-order leaf value reduces to the
    (shrunken) node mean of ``y``.
    """

    def __init__(
        self,
        *,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        n_bins: int = 64,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        self._binner: FeatureBinner | None = None
        self._tree: GradHessTree | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Fit the tree to continuous targets ``y``."""
        X = check_array(X)
        y = np.asarray(y, dtype=float).ravel()
        if y.shape[0] != X.shape[0]:
            raise ValidationError("X and y disagree on sample count")
        self._binner = FeatureBinner(self.n_bins)
        binned = self._binner.fit_transform(X)
        self._tree = GradHessTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            reg_lambda=0.0,
        )
        self._tree.fit(binned, -y, np.ones_like(y), n_bins=self.n_bins)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict continuous targets for ``X``."""
        if self._binner is None or self._tree is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        return self._tree.predict_binned(self._binner.transform(X))


class DecisionTreeClassifier(BaseClassifier):
    """Single-tree binary classifier (leaf value = class-1 fraction)."""

    def __init__(
        self,
        *,
        max_depth: int = 6,
        min_samples_leaf: int = 5,
        n_bins: int = 64,
    ) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        self._regressor: DecisionTreeRegressor | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._regressor = DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            n_bins=self.n_bins,
        )
        self._regressor.fit(X, y.astype(float))

    def _decision_function(self, X: np.ndarray) -> np.ndarray:
        assert self._regressor is not None
        # Leaf means are probabilities; map to logits for the base class.
        probs = np.clip(self._regressor.predict(X), 1e-6, 1.0 - 1e-6)
        return np.log(probs / (1.0 - probs))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-1 probability (leaf class fraction) per row."""
        self._check_fitted()
        assert self._regressor is not None
        X = self._check_shape(check_array(X))
        return np.clip(self._regressor.predict(X), 0.0, 1.0)
