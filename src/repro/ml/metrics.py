"""Binary-classification metrics used throughout the paper's evaluation.

The paper evaluates with precision, recall (Eqs. 2-3), and their harmonic
mean, the F1 score (Eq. 4), reported separately for the SBE (positive) and
non-SBE (negative) classes because accuracy is misleading on the heavily
imbalanced dataset.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "precision_recall_f1",
    "classification_report",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(int).ravel()
    y_pred = np.asarray(y_pred).astype(int).ravel()
    if y_true.shape != y_pred.shape:
        raise ValidationError(
            f"y_true and y_pred lengths differ: {y_true.size} vs {y_pred.size}"
        )
    if y_true.size == 0:
        raise ValidationError("metrics require at least one sample")
    for name, arr in (("y_true", y_true), ("y_pred", y_pred)):
        bad = np.setdiff1d(np.unique(arr), (0, 1))
        if bad.size:
            raise ValidationError(f"{name} must be binary, found labels {bad}")
    return y_true, y_pred


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[TN, FP], [FN, TP]]``."""
    y_true, y_pred = _validate(y_true, y_pred)
    matrix = np.zeros((2, 2), dtype=int)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def precision_score(
    y_true: np.ndarray, y_pred: np.ndarray, *, positive_label: int = 1
) -> float:
    """TP / (TP + FP) for the chosen class; 0.0 when nothing is predicted."""
    return precision_recall_f1(y_true, y_pred, positive_label=positive_label)[0]


def recall_score(
    y_true: np.ndarray, y_pred: np.ndarray, *, positive_label: int = 1
) -> float:
    """TP / (TP + FN) for the chosen class; 0.0 when the class is absent."""
    return precision_recall_f1(y_true, y_pred, positive_label=positive_label)[1]


def f1_score(
    y_true: np.ndarray, y_pred: np.ndarray, *, positive_label: int = 1
) -> float:
    """Harmonic mean of precision and recall (paper Eq. 4)."""
    return precision_recall_f1(y_true, y_pred, positive_label=positive_label)[2]


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, *, positive_label: int = 1
) -> tuple[float, float, float]:
    """Return ``(precision, recall, f1)`` for one class in a single pass.

    Degenerate denominators yield 0.0 rather than NaN, matching common
    reporting practice on imbalanced data.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    if positive_label not in (0, 1):
        raise ValidationError(f"positive_label must be 0 or 1, got {positive_label}")
    pos_true = y_true == positive_label
    pos_pred = y_pred == positive_label
    tp = int(np.sum(pos_true & pos_pred))
    fp = int(np.sum(~pos_true & pos_pred))
    fn = int(np.sum(pos_true & ~pos_pred))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return (precision, recall, f1)


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, dict[str, float]]:
    """Per-class precision/recall/F1 plus overall accuracy.

    Keys mirror the paper's terminology: ``"sbe"`` is the positive class,
    ``"non_sbe"`` the negative class.
    """
    sbe = precision_recall_f1(y_true, y_pred, positive_label=1)
    non_sbe = precision_recall_f1(y_true, y_pred, positive_label=0)
    return {
        "sbe": {"precision": sbe[0], "recall": sbe[1], "f1": sbe[2]},
        "non_sbe": {
            "precision": non_sbe[0],
            "recall": non_sbe[1],
            "f1": non_sbe[2],
        },
        "overall": {"accuracy": accuracy_score(y_true, y_pred)},
    }
