"""Dataset splitting utilities.

The paper's DS1-DS3 splits are *time-ordered*: 3.5 months of training
followed by the next two weeks of testing, repeated at three offsets.
:func:`time_ordered_split` is the primitive behind that;
:func:`train_test_split` is the usual random split for unit-level work.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.rng import child_rng
from repro.utils.validation import check_fraction

__all__ = ["train_test_split", "time_ordered_split"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_fraction: float = 0.25,
    stratify: bool = False,
    random_state: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split returning ``(X_train, X_test, y_train, y_test)``.

    With ``stratify=True`` each class contributes proportionally to the
    test set (at least one sample per class when possible).
    """
    check_fraction(test_fraction, "test_fraction", inclusive=False)
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError("X and y disagree on sample count")
    rng = child_rng(random_state)
    n = X.shape[0]
    if stratify:
        test_idx_parts = []
        for label in np.unique(y):
            idx = np.nonzero(y == label)[0]
            n_test = max(1, int(round(idx.size * test_fraction)))
            test_idx_parts.append(rng.choice(idx, size=min(n_test, idx.size), replace=False))
        test_idx = np.concatenate(test_idx_parts)
    else:
        n_test = max(1, int(round(n * test_fraction)))
        test_idx = rng.choice(n, size=min(n_test, n - 1), replace=False)
    test_mask = np.zeros(n, dtype=bool)
    test_mask[test_idx] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


def time_ordered_split(
    timestamps: np.ndarray,
    *,
    train_span: float,
    test_span: float,
    offset: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean masks ``(train_mask, test_mask)`` for one sliding window.

    ``timestamps`` are sample times (any monotone unit).  Training covers
    ``[t0 + offset, t0 + offset + train_span)`` and testing the following
    ``test_span``, where ``t0`` is the earliest timestamp.  This mirrors
    the paper's "3.5 months training, next two weeks testing" protocol.
    """
    timestamps = np.asarray(timestamps, dtype=float)
    if timestamps.ndim != 1 or timestamps.size == 0:
        raise ValidationError("timestamps must be a non-empty 1-D array")
    if train_span <= 0 or test_span <= 0:
        raise ValidationError("train_span and test_span must be positive")
    t0 = float(timestamps.min()) + float(offset)
    t_train_end = t0 + float(train_span)
    t_test_end = t_train_end + float(test_span)
    train_mask = (timestamps >= t0) & (timestamps < t_train_end)
    test_mask = (timestamps >= t_train_end) & (timestamps < t_test_end)
    return train_mask, test_mask
