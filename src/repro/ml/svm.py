"""Kernel support vector machine trained with (simplified) SMO.

The paper's SVM baseline "performs non-linear classification using a
kernel" and is by far the slowest model to train (Table III) because of
the quadratic-cost RBF kernel.  We keep that character: training
materializes the kernel matrix and runs Sequential Minimal Optimization,
so cost grows quadratically with the training-set size.  A stratified
subsampling cap (``max_train_size``) keeps wall-clock practical on a
laptop-class machine; the cap is part of the recorded configuration.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier
from repro.utils.rng import child_rng
from repro.utils.validation import check_in, check_positive

__all__ = ["SVC"]


class SVC(BaseClassifier):
    """Binary SVM with RBF or linear kernel.

    Parameters
    ----------
    C:
        Soft-margin penalty.
    kernel:
        ``"rbf"`` or ``"linear"``.
    gamma:
        RBF width; ``"scale"`` uses ``1 / (d * Var(X))`` like common
        libraries, or pass a float.
    tol:
        KKT violation tolerance.
    max_passes:
        SMO stops after this many consecutive full passes without any
        alpha update.
    max_iter:
        Hard bound on SMO sweeps.
    max_train_size:
        If the training set exceeds this, a stratified random subsample of
        this size is used (``None`` disables the cap).
    class_weight:
        ``None`` or ``"balanced"`` — scales C per class.
    random_state:
        Seed or generator for subsampling and SMO partner choice.
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 60,
        max_train_size: int | None = 4000,
        class_weight: str | None = "balanced",
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.C = check_positive(C, "C")
        self.kernel = check_in(kernel, ("rbf", "linear"), "kernel")
        if isinstance(gamma, str):
            check_in(gamma, ("scale",), "gamma")
        else:
            check_positive(gamma, "gamma")
        self.gamma = gamma
        self.tol = check_positive(tol, "tol")
        self.max_passes = int(check_positive(max_passes, "max_passes"))
        self.max_iter = int(check_positive(max_iter, "max_iter"))
        if max_train_size is not None:
            check_positive(max_train_size, "max_train_size")
        self.max_train_size = max_train_size
        if class_weight not in (None, "balanced"):
            raise ValueError(f"class_weight must be None or 'balanced', got {class_weight!r}")
        self.class_weight = class_weight
        self.random_state = random_state
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._gamma_value: float = 1.0

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = child_rng(self.random_state)
        X, y = self._maybe_subsample(X, y, rng)
        signs = np.where(y == 1, 1.0, -1.0)
        n = X.shape[0]
        self._gamma_value = self._resolve_gamma(X)
        K = self._kernel_matrix(X, X)
        c_per_sample = self._per_sample_C(y)

        alphas = np.zeros(n)
        b = 0.0
        # Error cache: errors[k] = f(x_k) - y_k, kept incrementally updated
        # so each SMO step is O(n) instead of O(n^2).
        errors = np.full(n, b) - signs
        passes = 0
        sweeps = 0
        while passes < self.max_passes and sweeps < self.max_iter:
            changed = 0
            for i in range(n):
                error_i = float(errors[i])
                if not self._violates_kkt(alphas[i], signs[i] * error_i, c_per_sample[i]):
                    continue
                j = self._pick_partner(i, n, rng)
                step = self._smo_step(
                    i, j, alphas, signs, K, b, error_i, float(errors[j]), c_per_sample
                )
                if step is None:
                    continue
                (delta_i, delta_j), new_b = step
                errors += (
                    delta_i * signs[i] * K[i, :]
                    + delta_j * signs[j] * K[j, :]
                    + (new_b - b)
                )
                alphas[i] += delta_i
                alphas[j] += delta_j
                b = new_b
                changed += 1
            sweeps += 1
            passes = passes + 1 if changed == 0 else 0

        support = alphas > 1e-8
        self.support_vectors_ = X[support]
        self.dual_coef_ = (alphas * signs)[support]
        self.intercept_ = float(b)

    def _decision_function(self, X: np.ndarray) -> np.ndarray:
        assert self.support_vectors_ is not None and self.dual_coef_ is not None
        if self.support_vectors_.shape[0] == 0:
            return np.full(X.shape[0], self.intercept_)
        K = self._kernel_matrix(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_

    # ------------------------------------------------------------------
    # SMO internals
    # ------------------------------------------------------------------
    def _violates_kkt(self, alpha: float, margin_error: float, c_cap: float) -> bool:
        return (margin_error < -self.tol and alpha < c_cap) or (
            margin_error > self.tol and alpha > 0
        )

    @staticmethod
    def _pick_partner(i: int, n: int, rng: np.random.Generator) -> int:
        j = int(rng.integers(0, n - 1))
        return j if j < i else j + 1

    def _smo_step(
        self,
        i: int,
        j: int,
        alphas: np.ndarray,
        signs: np.ndarray,
        K: np.ndarray,
        b: float,
        error_i: float,
        error_j: float,
        c_per_sample: np.ndarray,
    ) -> tuple[tuple[float, float], float] | None:
        """One SMO pair update; returns ``((delta_i, delta_j), new_b)``."""
        alpha_i_old, alpha_j_old = alphas[i], alphas[j]
        if signs[i] != signs[j]:
            low = max(0.0, alpha_j_old - alpha_i_old)
            high = min(c_per_sample[j], c_per_sample[j] + alpha_j_old - alpha_i_old)
        else:
            low = max(0.0, alpha_i_old + alpha_j_old - c_per_sample[i])
            high = min(c_per_sample[j], alpha_i_old + alpha_j_old)
        if high - low < 1e-12:
            return None
        eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
        if eta >= 0:
            return None
        alpha_j = alpha_j_old - signs[j] * (error_i - error_j) / eta
        alpha_j = float(np.clip(alpha_j, low, high))
        if abs(alpha_j - alpha_j_old) < 1e-7:
            return None
        alpha_i = alpha_i_old + signs[i] * signs[j] * (alpha_j_old - alpha_j)
        b1 = (
            b
            - error_i
            - signs[i] * (alpha_i - alpha_i_old) * K[i, i]
            - signs[j] * (alpha_j - alpha_j_old) * K[i, j]
        )
        b2 = (
            b
            - error_j
            - signs[i] * (alpha_i - alpha_i_old) * K[i, j]
            - signs[j] * (alpha_j - alpha_j_old) * K[j, j]
        )
        if 0 < alpha_i < c_per_sample[i]:
            new_b = b1
        elif 0 < alpha_j < c_per_sample[j]:
            new_b = b2
        else:
            new_b = (b1 + b2) / 2.0
        return (alpha_i - alpha_i_old, alpha_j - alpha_j_old), float(new_b)

    # ------------------------------------------------------------------
    # Kernels and helpers
    # ------------------------------------------------------------------
    def _resolve_gamma(self, X: np.ndarray) -> float:
        if isinstance(self.gamma, str):
            variance = float(X.var())
            return 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        return float(self.gamma)

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        sq_a = np.sum(A**2, axis=1)[:, None]
        sq_b = np.sum(B**2, axis=1)[None, :]
        d2 = np.maximum(sq_a + sq_b - 2.0 * (A @ B.T), 0.0)
        return np.exp(-self._gamma_value * d2)

    def _per_sample_C(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.full(y.shape[0], self.C)
        counts = np.bincount(y, minlength=2).astype(float)
        weights = y.shape[0] / (2.0 * counts)
        return self.C * weights[y]

    def _maybe_subsample(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.max_train_size is None or X.shape[0] <= self.max_train_size:
            return X, y
        # Stratified subsample preserving the class ratio (>=1 per class).
        keep_parts = []
        for label in (0, 1):
            idx = np.nonzero(y == label)[0]
            quota = max(1, int(round(self.max_train_size * idx.size / y.size)))
            keep_parts.append(rng.choice(idx, size=min(quota, idx.size), replace=False))
        keep = np.concatenate(keep_parts)
        rng.shuffle(keep)
        return X[keep], y[keep]
