"""Resampling strategies for imbalanced datasets.

Section VI-B of the paper surveys the standard mitigations before
proposing its TwoStage alternative: over-sampling the minority class with
synthetic samples (SMOTE), random under-sampling of the majority class,
and clustering-controlled under-sampling (k-means).  All three are
implemented here so the TwoStage design can be compared against them.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_X_y
from repro.ml.cluster import KMeans
from repro.utils.errors import ValidationError
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive

__all__ = ["RandomUnderSampler", "SMOTE", "KMeansUnderSampler"]


def _split_classes(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (majority_indices, minority_indices) for binary ``y``."""
    idx0 = np.nonzero(y == 0)[0]
    idx1 = np.nonzero(y == 1)[0]
    if idx0.size == 0 or idx1.size == 0:
        raise ValidationError("resampling requires both classes present")
    return (idx0, idx1) if idx0.size >= idx1.size else (idx1, idx0)


class RandomUnderSampler:
    """Randomly drop majority-class samples down to a target ratio.

    Parameters
    ----------
    ratio:
        Desired majority:minority size ratio after resampling (1.0 means
        perfectly balanced).
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        *,
        ratio: float = 1.0,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.ratio = check_positive(ratio, "ratio")
        self.random_state = random_state

    def fit_resample(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return the resampled ``(X, y)``."""
        X, y = check_X_y(X, y)
        rng = child_rng(self.random_state)
        majority, minority = _split_classes(y)
        target = min(majority.size, max(1, int(round(minority.size * self.ratio))))
        kept = rng.choice(majority, size=target, replace=False)
        keep = np.concatenate([kept, minority])
        rng.shuffle(keep)
        return X[keep], y[keep]


class SMOTE:
    """Synthetic Minority Over-sampling TEchnique (Chawla et al., 2002).

    New minority samples are drawn on line segments between each minority
    sample and one of its ``k_neighbors`` nearest minority neighbours.

    Parameters
    ----------
    ratio:
        Desired minority size as a fraction of the majority size after
        over-sampling (1.0 means balanced).
    k_neighbors:
        Neighbourhood size (clipped to available minority samples - 1).
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        *,
        ratio: float = 1.0,
        k_neighbors: int = 5,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.ratio = check_positive(ratio, "ratio")
        self.k_neighbors = int(check_positive(k_neighbors, "k_neighbors"))
        self.random_state = random_state

    def fit_resample(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)`` with synthetic minority rows appended."""
        X, y = check_X_y(X, y)
        rng = child_rng(self.random_state)
        majority, minority = _split_classes(y)
        minority_label = int(y[minority[0]])
        target = int(round(majority.size * self.ratio))
        n_new = max(0, target - minority.size)
        if n_new == 0:
            return X, y
        if minority.size < 2:
            raise ValidationError("SMOTE needs at least 2 minority samples")
        Xm = X[minority]
        k = min(self.k_neighbors, minority.size - 1)
        # Pairwise distances within the minority class (it is small by
        # definition, so the dense matrix is acceptable).
        d2 = (
            np.sum(Xm**2, axis=1)[:, None]
            - 2.0 * Xm @ Xm.T
            + np.sum(Xm**2, axis=1)[None, :]
        )
        np.fill_diagonal(d2, np.inf)
        neighbor_idx = np.argsort(d2, axis=1)[:, :k]
        base = rng.integers(0, minority.size, size=n_new)
        pick = rng.integers(0, k, size=n_new)
        neighbors = neighbor_idx[base, pick]
        gaps = rng.random(size=(n_new, 1))
        synthetic = Xm[base] + gaps * (Xm[neighbors] - Xm[base])
        X_out = np.vstack([X, synthetic])
        y_out = np.concatenate([y, np.full(n_new, minority_label, dtype=int)])
        return X_out, y_out


class KMeansUnderSampler:
    """Cluster the majority class and keep representatives per cluster.

    The majority class is clustered into ``ratio * n_minority`` groups and
    the sample nearest each centroid is retained, preserving coverage of
    the majority's modes rather than sampling blindly.
    """

    def __init__(
        self,
        *,
        ratio: float = 1.0,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.ratio = check_positive(ratio, "ratio")
        self.random_state = random_state

    def fit_resample(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return the resampled ``(X, y)``."""
        X, y = check_X_y(X, y)
        rng = child_rng(self.random_state)
        majority, minority = _split_classes(y)
        target = min(majority.size, max(1, int(round(minority.size * self.ratio))))
        km = KMeans(n_clusters=target, n_init=1, random_state=rng)
        labels = km.fit_predict(X[majority])
        assert km.cluster_centers_ is not None
        kept = []
        for cluster in range(target):
            members = majority[labels == cluster]
            if members.size == 0:
                continue
            d2 = np.sum((X[members] - km.cluster_centers_[cluster]) ** 2, axis=1)
            kept.append(members[int(np.argmin(d2))])
        keep = np.concatenate([np.asarray(kept, dtype=int), minority])
        rng.shuffle(keep)
        return X[keep], y[keep]
