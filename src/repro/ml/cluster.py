"""K-means clustering (Lloyd's algorithm with k-means++ seeding).

Used by :class:`repro.ml.sampling.KMeansUnderSampler`, one of the
imbalance-mitigation strategies the paper surveys (under-sampling the
majority class "via clustering algorithms such as k-means").
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_array
from repro.utils.errors import NotFittedError, ValidationError
from repro.utils.rng import child_rng
from repro.utils.validation import check_positive

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's k-means with k-means++ initialization.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    n_init:
        Number of independent restarts; the best inertia wins.
    max_iter:
        Iteration cap per restart.
    tol:
        Converged when the centroid shift (squared Frobenius) drops below
        this value.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        n_init: int = 3,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.n_clusters = int(check_positive(n_clusters, "n_clusters"))
        self.n_init = int(check_positive(n_init, "n_init"))
        self.max_iter = int(check_positive(max_iter, "max_iter"))
        self.tol = float(tol)
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.inertia_: float = np.inf
        self.labels_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster the rows of ``X``."""
        X = check_array(X)
        if X.shape[0] < self.n_clusters:
            raise ValidationError(
                f"need at least n_clusters={self.n_clusters} samples, got {X.shape[0]}"
            )
        rng = child_rng(self.random_state)
        best_inertia = np.inf
        best_centers: np.ndarray | None = None
        best_labels: np.ndarray | None = None
        for _ in range(self.n_init):
            centers = self._plus_plus_init(X, rng)
            for _ in range(self.max_iter):
                labels = self._assign(X, centers)
                new_centers = centers.copy()
                for k in range(self.n_clusters):
                    members = X[labels == k]
                    if members.shape[0]:
                        new_centers[k] = members.mean(axis=0)
                shift = float(((new_centers - centers) ** 2).sum())
                centers = new_centers
                if shift < self.tol:
                    break
            labels = self._assign(X, centers)
            inertia = float(((X - centers[labels]) ** 2).sum())
            if inertia < best_inertia:
                best_inertia, best_centers, best_labels = inertia, centers, labels
        self.cluster_centers_ = best_centers
        self.inertia_ = best_inertia
        self.labels_ = best_labels
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid label for each row of ``X``."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans is not fitted")
        return self._assign(check_array(X), self.cluster_centers_)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return training labels."""
        self.fit(X)
        assert self.labels_ is not None
        return self.labels_

    # ------------------------------------------------------------------
    def _assign(self, X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(X**2, axis=1)[:, None]
            - 2.0 * X @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        return np.argmin(d2, axis=1)

    def _plus_plus_init(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = X.shape[0]
        centers = np.empty((self.n_clusters, X.shape[1]))
        centers[0] = X[rng.integers(n)]
        closest_d2 = np.sum((X - centers[0]) ** 2, axis=1)
        for k in range(1, self.n_clusters):
            total = closest_d2.sum()
            if total <= 0:
                centers[k:] = X[rng.integers(n, size=self.n_clusters - k)]
                break
            probs = closest_d2 / total
            centers[k] = X[rng.choice(n, p=probs)]
            d2 = np.sum((X - centers[k]) ** 2, axis=1)
            closest_d2 = np.minimum(closest_d2, d2)
        return centers
