"""Benchmark regenerating the oracle-per-cabinet analysis (paper VII-D1).

Reuses the four models trained by the Fig. 10 benchmark in the same
session, so the timed unit is the oracle analysis itself.
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_oracle(benchmark, context):
    """Section VII-D1: oracle model choice barely beats global GBDT."""
    result = run_once(benchmark, lambda: run_experiment("oracle", context))
    print()
    print(result)
    assert result.data
