"""Benchmark regenerating Fig. 6: temperature by SBE period.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig06(benchmark, context):
    """Fig. 6: temperature by SBE period."""
    result = run_once(benchmark, lambda: run_experiment("fig6", context))
    print()
    print(result)
    assert result.data
