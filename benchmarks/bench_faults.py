"""Benchmark the telemetry fault-injection degradation sweep.

The benchmarked unit is the full ``faults`` experiment: inject, sanitize,
rebuild features, and retrain TwoStage-GBDT at every intensity in the
default sweep.  The printed table is the graceful-degradation curve
(clean F1 unchanged, bounded loss at moderate intensity, quarantined
fraction logged).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_faults(benchmark, context):
    """Degradation curve: TwoStage-GBDT F1 vs fault intensity."""
    result = run_once(benchmark, lambda: run_experiment("faults", context))
    print()
    print(result)
    assert result.data
    assert result.data["clean_noop"] is True
