"""Benchmark regenerating Fig. 4: SBE vs utilization correlations.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig04(benchmark, context):
    """Fig. 4: SBE vs utilization correlations."""
    result = run_once(benchmark, lambda: run_experiment("fig4", context))
    print()
    print(result)
    assert result.data
