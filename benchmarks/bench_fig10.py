"""Benchmark regenerating Fig. 10: model comparison on DS1.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig10(benchmark, context):
    """Fig. 10: model comparison on DS1."""
    result = run_once(benchmark, lambda: run_experiment("fig10", context))
    print()
    print(result)
    assert result.data
