"""Benchmark regenerating Fig. 3: application SBE skew.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig03(benchmark, context):
    """Fig. 3: application SBE skew."""
    result = run_once(benchmark, lambda: run_experiment("fig3", context))
    print()
    print(result)
    assert result.data
