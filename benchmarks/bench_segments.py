#!/usr/bin/env python
"""Scale benchmark: segmented out-of-core pipeline vs monolithic.

Runs the full trace -> features pipeline twice, each in its own child
process so ``ru_maxrss`` reports an honest per-path high-water mark:

- **monolithic** — ``simulate_trace`` (whole machine in memory), save and
  reload the single-archive trace, then ``build_features`` (batch);
- **segmented** — ``simulate_trace_to_store`` (one shard span in memory
  at a time, committed segment by segment), then
  ``build_features_from_store`` (two streaming passes, never
  materializing the merged trace).

Both paths end at the same bit-identical feature matrix (enforced by
``tests/store``); this benchmark measures what that durability costs —
or saves — in wall-clock and peak RSS, and seeds ``BENCH_scale.json``
with the trajectory numbers referenced by ROADMAP.md.

Usage::

    PYTHONPATH=src python benchmarks/bench_segments.py \
        [--preset small] [--segments 8] [--out BENCH_scale.json]
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _peak_rss_bytes() -> int:
    """Process high-water RSS in bytes (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss if sys.platform == "darwin" else rss * 1024)


def _child(mode: str, preset: str, segments: int, workdir: str) -> None:
    """Run one pipeline end to end and print a JSON report line."""
    from repro.experiments.presets import preset_config

    config = preset_config(preset)
    start = time.perf_counter()
    if mode == "monolithic":
        from repro.features.builder import build_features
        from repro.telemetry.simulator import simulate_trace
        from repro.telemetry.trace import Trace

        trace = simulate_trace(config)
        trace.save(Path(workdir) / "trace")
        trace = Trace.load(Path(workdir) / "trace")
        features = build_features(trace)
        rows = trace.num_samples
    elif mode == "segmented":
        from repro.features.builder import build_features_from_store
        from repro.store import simulate_trace_to_store

        store = simulate_trace_to_store(
            config, Path(workdir) / "store", segments=segments
        )
        features = build_features_from_store(store)
        rows = store.num_samples
    else:  # pragma: no cover - parent validates
        raise SystemExit(f"unknown child mode {mode!r}")
    seconds = time.perf_counter() - start
    print(
        json.dumps(
            {
                "rows": int(rows),
                "num_features": int(features.X.shape[1]),
                "seconds": round(seconds, 3),
                "rows_per_sec": round(rows / seconds, 1),
                "peak_rss_bytes": _peak_rss_bytes(),
            }
        )
    )


def _run_child(mode: str, preset: str, segments: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as workdir:
        out = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--child",
                mode,
                "--preset",
                preset,
                "--segments",
                str(segments),
                "--workdir",
                workdir,
            ],
            env=env,
            check=True,
            capture_output=True,
            text=True,
        )
    return json.loads(out.stdout.strip().splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="small")
    parser.add_argument("--segments", type=int, default=8)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_scale.json"))
    parser.add_argument("--child", choices=["monolithic", "segmented"])
    parser.add_argument("--workdir")
    args = parser.parse_args(argv)

    if args.child:
        _child(args.child, args.preset, args.segments, args.workdir)
        return 0

    report: dict = {
        "benchmark": "bench_segments",
        "preset": args.preset,
        "segments": args.segments,
    }
    for mode in ("monolithic", "segmented"):
        print(f"{mode}: simulating + building features ...", flush=True)
        result = _run_child(mode, args.preset, args.segments)
        report[mode] = result
        print(
            f"  {result['rows']} rows in {result['seconds']}s "
            f"({result['rows_per_sec']} rows/s), peak RSS "
            f"{result['peak_rss_bytes'] / 1e6:.1f} MB"
        )

    mono, seg = report["monolithic"], report["segmented"]
    ratio = seg["peak_rss_bytes"] / mono["peak_rss_bytes"]
    report["peak_rss_ratio"] = round(ratio, 3)
    report["peak_rss_reduction_pct"] = round((1.0 - ratio) * 100.0, 1)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"segmented peak RSS is {ratio:.2f}x monolithic "
        f"({report['peak_rss_reduction_pct']}% reduction) -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
