"""Benchmark regenerating Fig. 1: SBE offender nodes per cabinet.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig01(benchmark, context):
    """Fig. 1: SBE offender nodes per cabinet."""
    result = run_once(benchmark, lambda: run_experiment("fig1", context))
    print()
    print(result)
    assert result.data
