"""Benchmark regenerating Fig. 12: history-feature ablations.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig12(benchmark, context):
    """Fig. 12: history-feature ablations."""
    result = run_once(benchmark, lambda: run_experiment("fig12", context))
    print()
    print(result)
    assert result.data
