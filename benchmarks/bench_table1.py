"""Benchmark regenerating Table I: basic schemes.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_table1(benchmark, context):
    """Table I: basic schemes."""
    result = run_once(benchmark, lambda: run_experiment("table1", context))
    print()
    print(result)
    assert result.data
