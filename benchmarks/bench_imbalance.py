"""Benchmark regenerating the imbalance-mitigation comparison (paper VI-B).

Compares SMOTE, random under-sampling, and k-means under-sampling against
the paper's TwoStage method, all with the same GBDT stage-2 model.
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_imbalance(benchmark, context):
    """Section VI-B: generic resampling vs the TwoStage design."""
    result = run_once(benchmark, lambda: run_experiment("imbalance", context))
    print()
    print(result)
    assert result.data
