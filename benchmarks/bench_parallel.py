"""Benchmarks for the parallel execution layer.

Measures sharded simulation against the serial baseline and the parallel
experiment fan-out against its serial sweep, asserting bit-parity in the
same breath — a speedup that changes results would be worthless.

Honesty note: wall-clock speedup requires physical cores.  On a
single-core box the sharded run costs serial time plus process overhead;
the numbers printed here report whatever the host provides
(``repro.parallel`` caps workers at the CPU count).  The ``--jobs 4``
acceptance numbers in EXPERIMENTS.md come from a multi-core host.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np

from repro.experiments.faults_experiment import run_faults
from repro.experiments.presets import preset_config
from repro.experiments.runner import ExperimentContext
from repro.parallel.simulate import simulate_trace_sharded
from repro.telemetry.simulator import simulate_trace

from conftest import run_once

_JOBS = max(1, min(4, multiprocessing.cpu_count()))


def test_simulate_serial_baseline(benchmark):
    """Serial tiny-trace simulation (the reference for the sharded run)."""
    config = preset_config("tiny")
    trace = run_once(benchmark, lambda: simulate_trace(config))
    assert trace.num_samples > 0


def test_simulate_sharded(benchmark):
    """Sharded tiny-trace simulation on the available cores."""
    config = preset_config("tiny")
    serial_start = time.perf_counter()
    serial = simulate_trace(config)
    serial_seconds = time.perf_counter() - serial_start

    trace = run_once(
        benchmark,
        lambda: simulate_trace_sharded(config, shards=4, jobs=_JOBS),
    )
    assert np.array_equal(trace.samples["sbe_count"], serial.samples["sbe_count"])
    sharded_seconds = benchmark.stats.stats.mean
    print(
        f"\nserial {serial_seconds:.2f}s vs sharded({_JOBS} jobs) "
        f"{sharded_seconds:.2f}s -> speedup {serial_seconds / sharded_seconds:.2f}x "
        f"({multiprocessing.cpu_count()} cpu(s) visible)"
    )


def test_faults_sweep_parallel(benchmark):
    """Fault-intensity sweep fanned over worker processes, parity-checked."""
    context = ExperimentContext("tiny", use_disk_cache=False)
    intensities = (0.0, 0.1, 0.25, 0.5)
    serial_start = time.perf_counter()
    serial = run_faults(context, intensities=intensities, jobs=1)
    serial_seconds = time.perf_counter() - serial_start

    fanned = run_once(
        benchmark,
        lambda: run_faults(context, intensities=intensities, jobs=_JOBS),
    )
    for a, b in zip(serial.data["curve"], fanned.data["curve"]):
        assert a["intensity"] == b["intensity"]
        assert a["f1"] == b["f1"] or (a["f1"] != a["f1"] and b["f1"] != b["f1"])
    fanned_seconds = benchmark.stats.stats.mean
    print(
        f"\nfaults sweep: serial {serial_seconds:.2f}s vs --jobs {_JOBS} "
        f"{fanned_seconds:.2f}s -> speedup {serial_seconds / fanned_seconds:.2f}x "
        f"(cells identical: yes)"
    )
