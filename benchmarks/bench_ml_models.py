"""Microbenchmarks for the from-scratch ML substrate.

These time each model's fit/predict on a fixed synthetic dataset, which
complements Table III (whose numbers come from real stage-2 training data
inside the TwoStage pipeline).
"""

import numpy as np

from repro.ml import (
    GradientBoostingClassifier,
    KMeans,
    LogisticRegression,
    MLPClassifier,
    SMOTE,
    SVC,
)


def test_fit_logistic_regression(benchmark, ml_dataset):
    X, y = ml_dataset
    benchmark(
        lambda: LogisticRegression(epochs=20, random_state=0).fit(X, y)
    )


def test_fit_gbdt(benchmark, ml_dataset):
    X, y = ml_dataset
    benchmark.pedantic(
        lambda: GradientBoostingClassifier(
            n_estimators=50, max_depth=4, random_state=0
        ).fit(X, y),
        rounds=2,
        iterations=1,
    )


def test_fit_svm_capped(benchmark, ml_dataset):
    X, y = ml_dataset
    benchmark.pedantic(
        lambda: SVC(max_train_size=2000, max_iter=20, random_state=0).fit(X, y),
        rounds=2,
        iterations=1,
    )


def test_fit_mlp(benchmark, ml_dataset):
    X, y = ml_dataset
    benchmark.pedantic(
        lambda: MLPClassifier(
            hidden_layers=(32, 16), epochs=20, random_state=0
        ).fit(X, y),
        rounds=2,
        iterations=1,
    )


def test_predict_gbdt(benchmark, ml_dataset):
    X, y = ml_dataset
    model = GradientBoostingClassifier(
        n_estimators=50, max_depth=4, random_state=0
    ).fit(X, y)
    benchmark(lambda: model.predict(X))


def test_kmeans(benchmark, ml_dataset):
    X, _ = ml_dataset
    benchmark.pedantic(
        lambda: KMeans(n_clusters=8, n_init=1, random_state=0).fit(X[:5000]),
        rounds=2,
        iterations=1,
    )


def test_smote(benchmark, ml_dataset):
    X, y = ml_dataset
    rng = np.random.default_rng(0)
    y_imb = np.where(rng.random(y.size) < 0.03, y, 0)
    benchmark(lambda: SMOTE(random_state=0).fit_resample(X[:5000], y_imb[:5000]))
