"""Benchmark regenerating Table IV: temp/power feature variants.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_table4(benchmark, context):
    """Table IV: temp/power feature variants."""
    result = run_once(benchmark, lambda: run_experiment("table4", context))
    print()
    print(result)
    assert result.data
