"""Benchmark regenerating Fig. 2: SBE-affected apruns per cabinet.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig02(benchmark, context):
    """Fig. 2: SBE-affected apruns per cabinet."""
    result = run_once(benchmark, lambda: run_experiment("fig2", context))
    print()
    print(result)
    assert result.data
