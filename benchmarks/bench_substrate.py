"""Microbenchmarks for the telemetry substrate and feature builder."""

import numpy as np

from repro.experiments.presets import preset_config
from repro.features.builder import build_features
from repro.features.history import HistoryIndex
from repro.telemetry.simulator import simulate_trace

from conftest import run_once


def test_simulate_tiny_trace(benchmark):
    """Whole-trace simulation throughput at unit-test scale."""
    config = preset_config("tiny")
    trace = run_once(benchmark, lambda: simulate_trace(config))
    assert trace.num_samples > 0


def test_feature_build(benchmark, context):
    """Feature-matrix construction over the benchmark trace."""
    trace = context.trace
    features = run_once(benchmark, lambda: build_features(trace))
    print(
        f"\nfeatures: {features.X.shape[0]} samples x {features.X.shape[1]} columns"
    )
    assert features.X.size > 0


def test_history_index_batch_queries(benchmark):
    """Vectorized history window queries (1e5 queries over 1e4 events)."""
    rng = np.random.default_rng(0)
    n_events, n_queries = 10_000, 100_000
    index = HistoryIndex(
        keys=rng.integers(0, 500, n_events),
        minutes=rng.uniform(0, 1e5, n_events),
        counts=rng.integers(1, 5, n_events),
    )
    keys = rng.integers(0, 500, n_queries)
    starts = rng.uniform(0, 9e4, n_queries)
    ends = starts + 1440.0
    benchmark(lambda: index.batch_between(keys, starts, ends))
