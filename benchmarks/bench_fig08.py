"""Benchmark regenerating Fig. 8: repeated-run profiles.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig08(benchmark, context):
    """Fig. 8: repeated-run profiles."""
    result = run_once(benchmark, lambda: run_experiment("fig8", context))
    print()
    print(result)
    assert result.data
