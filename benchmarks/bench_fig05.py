"""Benchmark regenerating Fig. 5: temperature/power cabinet grids.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig05(benchmark, context):
    """Fig. 5: temperature/power cabinet grids."""
    result = run_once(benchmark, lambda: run_experiment("fig5", context))
    print()
    print(result)
    assert result.data
