"""Benchmark regenerating Table VI: severity levels.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_table6(benchmark, context):
    """Table VI: severity levels."""
    result = run_once(benchmark, lambda: run_experiment("table6", context))
    print()
    print(result)
    assert result.data
