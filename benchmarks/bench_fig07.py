"""Benchmark regenerating Fig. 7: power by SBE period.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig07(benchmark, context):
    """Fig. 7: power by SBE period."""
    result = run_once(benchmark, lambda: run_experiment("fig7", context))
    print()
    print(result)
    assert result.data
