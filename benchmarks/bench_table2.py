"""Benchmark regenerating Table II: F1 across datasets.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_table2(benchmark, context):
    """Table II: F1 across datasets."""
    result = run_once(benchmark, lambda: run_experiment("table2", context))
    print()
    print(result)
    assert result.data
