"""Benchmark the fault-tolerant serving layer.

Two questions, benchmarked separately:

1. **Supervision overhead** — the supervised scorer with no chaos plan
   must cost roughly nothing over the raw scorer (the clean path runs
   the same vectorized prediction; the retry/breaker/DLQ machinery is
   dormant).  The printed ratio is the number to watch.
2. **Throughput under chaos** — a full moderate-intensity chaos replay,
   including retries, fallback scoring, dead-letter replay, and hot-swap
   verification loads, against the clean replay's wall-clock.
"""

import numpy as np
import pytest

from repro.core.twostage import TwoStagePredictor
from repro.features.builder import compute_top_apps
from repro.serve import (
    ChaosPlan,
    MicroBatchScorer,
    ScorerConfig,
    StreamingFeatureEngine,
    SupervisedScorer,
    iter_trace_events,
    serve_replay,
)

from conftest import run_once


@pytest.fixture(scope="module")
def serving(context):
    """Fitted fast predictor + streamed rows of the benchmark trace."""
    train, _ = context.pipeline.train_test("DS1")
    predictor = TwoStagePredictor("gbdt", random_state=0, fast=True)
    predictor.fit(train)
    trace = context.trace
    engine = StreamingFeatureEngine(
        trace.machine,
        compute_top_apps(np.asarray(trace.samples["app_id"], dtype=int), 16),
    )
    rows = list(engine.stream(iter_trace_events(trace)))
    return predictor, engine.schema, rows


@pytest.mark.parametrize("supervised", [False, True], ids=["raw", "supervised"])
def test_supervision_overhead(benchmark, serving, supervised):
    """Clean-path rows/sec: supervised (no chaos) vs raw scorer."""
    predictor, schema, rows = serving
    cls = SupervisedScorer if supervised else MicroBatchScorer

    def score_all():
        scorer = cls(predictor, schema, ScorerConfig(max_batch_size=256))
        scorer.submit(rows, now_minute=0.0)
        scorer.flush()
        return scorer.counters

    counters = run_once(benchmark, score_all)
    print()
    print(
        f"{'supervised' if supervised else 'raw       '}: "
        f"{counters.rows_per_second:12,.0f} rows/s scoring, "
        f"{counters.batches} batches"
    )
    assert counters.rows_scored == len(rows)


def test_chaos_replay_throughput(benchmark, context, tmp_path):
    """Full moderate-chaos replay: absorb faults, keep availability."""
    report = run_once(
        benchmark,
        lambda: serve_replay(
            context.trace,
            tmp_path / "registry",
            splits=context.preset_splits(),
            batch_size=256,
            fast=True,
            chaos=ChaosPlan(intensity=0.25, seed=7),
        ),
    )
    r = report.resilience
    print()
    print(report)
    print(
        f"chaos overhead: {r.retries} retries, "
        f"{r.replayed_rows} rows via dead-letter replay, "
        f"{r.simulated_stall_seconds:.0f}s simulated stalls (not slept)"
    )
    assert r.availability >= 0.99
    assert len(report.alerts) == report.rows_test
