"""Benchmark regenerating Fig. 13: spatial robustness.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig13(benchmark, context):
    """Fig. 13: spatial robustness."""
    result = run_once(benchmark, lambda: run_experiment("fig13", context))
    print()
    print(result)
    assert result.data
