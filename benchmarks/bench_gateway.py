#!/usr/bin/env python
"""Gateway load benchmark: events/sec and latency vs shard count.

Drives the synthetic client fleet through the in-process gateway at
each shard count (clean path, no chaos) and records sustained ingest
throughput plus p50/p99 per-event scoring latency.  Seeds
``BENCH_gateway.json`` — the serving-tier sizing numbers alongside the
``BENCH_scale.json`` storage trajectory.

Interpretation note: shards here are asyncio tasks in one Python
process, so added shards buy *isolation* (independent queues, chaos
domains, rolling-swap units) and smaller per-shard batches, not extra
CPUs — events/sec is expected to be roughly flat or gently declining
with shard count.  The number that must not regress is the 1-shard
throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway.py \
        [--preset tiny] [--shards 1,2,4] [--clients 3] \
        [--out BENCH_gateway.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_one(trace, splits, *, shards: int, clients: int, batch_size: int) -> dict:
    from repro.gateway import GatewayConfig, build_gateway, run_fleet

    async def drive() -> dict:
        with tempfile.TemporaryDirectory() as root:
            build_start = time.perf_counter()
            gateway = build_gateway(
                trace,
                root,
                splits=splits,
                config=GatewayConfig(shards=shards, batch_size=batch_size),
                fast=True,
            )
            build_seconds = time.perf_counter() - build_start
            await gateway.start()
            fleet = await run_fleet(gateway, trace, clients=clients)
            await gateway.close()
            latency = gateway.latency_percentiles()
            assert gateway.stats.zero_drop, "gateway dropped events"
            return {
                "shards": shards,
                "events": fleet.events_sent,
                "events_per_sec": round(
                    fleet.events_sent / fleet.wall_seconds, 1
                ),
                "p50_ms": round(latency["p50"] * 1e3, 4),
                "p99_ms": round(latency["p99"] * 1e3, 4),
                "alerts": len(gateway.scored_alerts),
                "alarms": len(gateway.alarm_engine.alarms),
                "ingest_seconds": round(fleet.wall_seconds, 3),
                "build_seconds": round(build_seconds, 3),
            }

    return asyncio.run(drive())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="tiny")
    parser.add_argument("--shards", default="1,2,4")
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_gateway.json"))
    args = parser.parse_args()

    from repro.experiments.presets import preset_config, split_plan
    from repro.features.splits import make_paper_splits
    from repro.telemetry.simulator import simulate_trace

    trace = simulate_trace(preset_config(args.preset))
    plan = split_plan(args.preset)
    splits = make_paper_splits(
        train_days=plan["train_days"],
        test_days=plan["test_days"],
        offsets_days=tuple(plan["offsets"]),
        duration_days=trace.config.duration_days,
    )
    shard_counts = [int(part) for part in args.shards.split(",") if part.strip()]
    points = []
    for shards in shard_counts:
        point = bench_one(
            trace,
            splits,
            shards=shards,
            clients=args.clients,
            batch_size=args.batch_size,
        )
        points.append(point)
        print(
            f"shards={point['shards']}: {point['events_per_sec']:.0f} events/s, "
            f"p50 {point['p50_ms']:.3f} ms, p99 {point['p99_ms']:.3f} ms "
            f"({point['events']} events, {point['alarms']} alarms)"
        )

    report = {
        "benchmark": "bench_gateway",
        "preset": args.preset,
        "clients": args.clients,
        "batch_size": args.batch_size,
        "points": points,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
