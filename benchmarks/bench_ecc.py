"""Benchmark regenerating Discussion VIII: prediction-driven ECC policy.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_ecc(benchmark, context):
    """Discussion VIII: prediction-driven ECC policy."""
    result = run_once(benchmark, lambda: run_experiment("ecc", context))
    print()
    print(result)
    assert result.data
