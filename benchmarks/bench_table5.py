"""Benchmark regenerating Table V: runtime classes.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_table5(benchmark, context):
    """Table V: runtime classes."""
    result = run_once(benchmark, lambda: run_experiment("table5", context))
    print()
    print(result)
    assert result.data
