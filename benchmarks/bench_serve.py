"""Benchmark the online serving path: scoring throughput vs batch size.

Streams the benchmark trace through the feature engine once (shared
fixture), then measures micro-batch scoring throughput at several batch
sizes.  The printed table is rows/sec of pure scoring (queue + feature
assembly + TwoStage prediction), the serving subsystem's headline
number; a separate test times the full event-driven replay.
"""

import numpy as np
import pytest

from repro.core.twostage import TwoStagePredictor
from repro.features.builder import compute_top_apps
from repro.serve import (
    MicroBatchScorer,
    ScorerConfig,
    StreamingFeatureEngine,
    iter_trace_events,
    serve_replay,
)

from conftest import run_once

BATCH_SIZES = (32, 128, 512, 2048)


@pytest.fixture(scope="module")
def serving(context):
    """Fitted fast predictor + streamed rows of the benchmark trace."""
    train, _ = context.pipeline.train_test("DS1")
    predictor = TwoStagePredictor("gbdt", random_state=0, fast=True)
    predictor.fit(train)
    trace = context.trace
    engine = StreamingFeatureEngine(
        trace.machine,
        compute_top_apps(np.asarray(trace.samples["app_id"], dtype=int), 16),
    )
    rows = list(engine.stream(iter_trace_events(trace)))
    return predictor, engine.schema, rows


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_scoring_throughput(benchmark, serving, batch_size):
    """Rows/sec through the micro-batch scorer at one batch size."""
    predictor, schema, rows = serving

    def score_all():
        scorer = MicroBatchScorer(
            predictor, schema, ScorerConfig(max_batch_size=batch_size)
        )
        scorer.submit(rows, now_minute=0.0)
        scorer.flush()
        return scorer.counters

    counters = run_once(benchmark, score_all)
    print()
    print(
        f"batch={batch_size:5d}: {counters.rows_per_second:12,.0f} rows/s "
        f"scoring, {counters.batches} batches, "
        f"{counters.rows_scored} rows"
    )
    assert counters.rows_scored == len(rows)
    assert counters.rows_per_second > 0


def test_serve_replay_end_to_end(benchmark, context, tmp_path):
    """The full online replay: events -> features -> registry -> alerts."""
    report = run_once(
        benchmark,
        lambda: serve_replay(
            context.trace,
            tmp_path / "registry",
            splits=context.preset_splits(),
            batch_size=256,
            fast=True,
        ),
    )
    print()
    print(report)
    assert report.agreement == 1.0
