"""Shared benchmark fixtures.

Benchmarks regenerate every table and figure of the paper on the
``default`` preset (full 25 x 8 cabinet grid, 126 simulated days).  The
trace is simulated once and cached on disk (see ``REPRO_CACHE_DIR``), so
the first benchmark session pays ~1 minute of simulation and later
sessions start immediately.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see each regenerated table/figure rendered as text.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments.runner import ExperimentContext

#: Preset used by the experiment benchmarks; override for quick runs.
BENCH_PRESET = os.environ.get("REPRO_BENCH_PRESET", "default")


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Experiment context on the benchmark preset (disk-cached trace)."""
    return ExperimentContext(BENCH_PRESET)


@pytest.fixture(scope="session")
def ml_dataset() -> tuple[np.ndarray, np.ndarray]:
    """Synthetic nonlinear dataset for ML microbenchmarks."""
    rng = np.random.default_rng(7)
    n = 20_000
    X = rng.normal(size=(n, 30))
    score = (
        np.sin(2 * X[:, 0]) + X[:, 1] * X[:, 2] - 0.4 * X[:, 3] ** 2
        + 0.3 * rng.normal(size=n)
    )
    y = (score > -0.2).astype(int)
    return X, y


def run_once(benchmark, func):
    """Run ``func`` exactly once under timing and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
