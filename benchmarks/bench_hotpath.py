#!/usr/bin/env python
"""Hot-path scoring benchmark: per-tree loop vs flattened kernels.

Measures single-core GBDT batch-scoring throughput three ways and seeds
``BENCH_hotpath.json`` for the CI regression gate:

* **kernel legs** — raw margin computation (binned codes in, scores
  out) at the serving micro-batch sizes (32, 256) and in bulk, for the
  legacy per-tree loop (the pre-kernel ``benchmarks/bench_serve.py``
  scoring path) against the flattened numpy kernel, plus numba when
  installed;
* **microbatch leg** — the end-to-end serve path
  (:class:`~repro.serve.scorer.MicroBatchScorer`: queue + fused row
  assembly + TwoStage prediction) under both scoring paths;
* **row-fusion leg** — :func:`~repro.serve.engine.rows_to_matrix`
  batch assembly throughput.

Every leg scores identical inputs on both paths and asserts bit-equal
outputs before timing — a benchmark that drifts from the exactness
contract must fail, not report a meaningless speedup.  Absolute rows/sec
are machine-specific; the committed regression baseline therefore pins
the machine-relative ``speedup`` ratios, which CI re-measures with
``--quick``.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        [--preset tiny] [--quick] [--bulk-rows N] [--out BENCH_hotpath.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Serving micro-batch sizes: the gateway/replay test batch and the
#: replay default (``ScorerConfig.max_batch_size``).
MICRO_BATCH_SIZES = (32, 256)


def _best_seconds(fn, *, repeats: int, min_rows: int, batch_rows: int) -> float:
    """Best-of-``repeats`` per-call seconds, looping small batches."""
    calls = max(1, min_rows // batch_rows)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - start) / calls)
    return best


def bench_kernel_legs(gb, X, *, bulk_rows: int, repeats: int) -> list[dict]:
    """Per-tree loop vs flat kernels on the raw scoring hot path."""
    from repro.ml.kernels import numba_available, predict_raw

    entries = []
    for batch_rows in (*MICRO_BATCH_SIZES, bulk_rows):
        tiles = batch_rows // X.shape[0] + 1
        Xb = np.tile(X, (tiles, 1))[:batch_rows] if tiles > 1 else X[:batch_rows]
        binned = gb._binner.transform(Xb)
        tag = "bulk" if batch_rows == bulk_rows else f"batch{batch_rows}"

        def pertree():
            raw = np.full(binned.shape[0], gb._base_score)
            for tree in gb._trees:
                raw += gb.learning_rate * tree.predict_binned(binned)
            return raw

        def flat(backend="numpy"):
            return predict_raw(
                gb._flat,
                binned,
                base_score=gb._base_score,
                learning_rate=gb.learning_rate,
                backend=backend,
            )

        assert np.array_equal(pertree(), flat()), "kernel broke bit-identity"
        min_rows = max(bulk_rows, 4 * batch_rows)
        seconds_pertree = _best_seconds(
            pertree, repeats=repeats, min_rows=min_rows, batch_rows=batch_rows
        )
        rate_pertree = batch_rows / seconds_pertree
        entries.append(
            {"label": f"pertree_{tag}", "rows_per_sec": round(rate_pertree, 1)}
        )
        backends = ["numpy"] + (["numba"] if numba_available() else [])
        for backend in backends:
            if backend == "numba":
                assert np.array_equal(flat("numba"), flat()), (
                    "numba kernel broke bit-identity"
                )
            seconds = _best_seconds(
                lambda: flat(backend),
                repeats=repeats,
                min_rows=min_rows,
                batch_rows=batch_rows,
            )
            entries.append(
                {
                    "label": f"{backend}_{tag}",
                    "rows_per_sec": round(batch_rows / seconds, 1),
                    "speedup": round(seconds_pertree / seconds, 2),
                }
            )
    return entries


def bench_microbatch_leg(predictor, schema, rows, *, repeats: int) -> list[dict]:
    """End-to-end micro-batch serve path under both scoring paths."""
    from repro.serve import MicroBatchScorer, ScorerConfig

    gb = predictor._model

    def score_all() -> float:
        scorer = MicroBatchScorer(
            predictor, schema, ScorerConfig(max_batch_size=MICRO_BATCH_SIZES[0])
        )
        scorer.submit(rows, now_minute=0.0)
        scorer.flush()
        return scorer.counters.rows_per_second

    entries = []
    rates = {}
    for label, patched in (("microbatch_pertree", True), ("microbatch_numpy", False)):
        if patched:
            # Instance-level patch: exactly the pre-kernel scoring path.
            gb._decision_function = gb._decision_function_pertree
        else:
            gb.__dict__.pop("_decision_function", None)
        rates[label] = max(score_all() for _ in range(repeats))
        entries.append({"label": label, "rows_per_sec": round(rates[label], 1)})
    entries[-1]["speedup"] = round(
        rates["microbatch_numpy"] / rates["microbatch_pertree"], 2
    )
    return entries


def bench_row_fusion_leg(schema, rows, *, repeats: int) -> dict:
    """Fused StreamedRow -> FeatureMatrix batch assembly."""
    from repro.serve.engine import rows_to_matrix

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        rows_to_matrix(rows, schema)
        best = min(best, time.perf_counter() - start)
    return {"label": "row_fusion", "rows_per_sec": round(len(rows) / best, 1)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="tiny")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: fast-caps model, smaller bulk batch, fewer repeats",
    )
    parser.add_argument("--bulk-rows", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_hotpath.json"))
    args = parser.parse_args()

    bulk_rows = args.bulk_rows or (20_000 if args.quick else 100_000)
    repeats = args.repeats or (2 if args.quick else 3)

    from repro.core.twostage import TwoStagePredictor
    from repro.experiments.presets import preset_config, split_plan
    from repro.features.builder import compute_top_apps
    from repro.features.splits import make_paper_splits
    from repro.core.pipeline import PredictionPipeline
    from repro.features.builder import build_features
    from repro.ml.gbdt import GradientBoostingClassifier
    from repro.serve import StreamingFeatureEngine, iter_trace_events
    from repro.telemetry.simulator import simulate_trace

    trace = simulate_trace(preset_config(args.preset))
    features = build_features(trace)
    plan = split_plan(args.preset)
    splits = make_paper_splits(
        train_days=plan["train_days"],
        test_days=plan["test_days"],
        offsets_days=tuple(plan["offsets"]),
        duration_days=trace.config.duration_days,
    )
    pipeline = PredictionPipeline(features, splits)
    train, _ = pipeline.train_test("DS1")

    caps = {"n_estimators": 40, "max_depth": 3} if args.quick else {}
    gb = GradientBoostingClassifier(random_state=0, **caps)
    gb.fit(train.X, train.y)
    print(
        f"model: {gb.n_estimators_} trees, {gb._flat.n_nodes} nodes "
        f"({'quick' if args.quick else 'full'} caps)"
    )

    entries = bench_kernel_legs(gb, features.X, bulk_rows=bulk_rows, repeats=repeats)

    predictor = TwoStagePredictor("gbdt", random_state=0, fast=args.quick)
    predictor.fit(train)
    engine = StreamingFeatureEngine(
        trace.machine,
        compute_top_apps(np.asarray(trace.samples["app_id"], dtype=int), 16),
    )
    rows = list(engine.stream(iter_trace_events(trace)))
    entries.extend(bench_microbatch_leg(predictor, engine.schema, rows, repeats=repeats))
    entries.append(bench_row_fusion_leg(engine.schema, rows, repeats=repeats))

    for entry in entries:
        speedup = entry.get("speedup")
        suffix = f"  ({speedup:.2f}x vs per-tree)" if speedup is not None else ""
        print(f"{entry['label']:>20}: {entry['rows_per_sec']:12,.0f} rows/s{suffix}")

    headline = next(e for e in entries if e["label"] == "numpy_batch32")
    floor = 2.0 if args.quick else 5.0
    if headline["speedup"] < floor:
        print(
            f"FAIL: numpy kernel speedup {headline['speedup']:.2f}x at the serve "
            f"micro-batch size is below the {floor:.0f}x floor"
        )
        return 1

    report = {
        "benchmark": "bench_hotpath",
        "preset": args.preset,
        "quick": args.quick,
        "bulk_rows": bulk_rows,
        "n_trees": int(gb.n_estimators_),
        "n_nodes": int(gb._flat.n_nodes),
        "entries": entries,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} (headline: {headline['speedup']:.2f}x at batch 32)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
