"""Benchmark regenerating Fig. 11: feature-group contributions.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig11(benchmark, context):
    """Fig. 11: feature-group contributions."""
    result = run_once(benchmark, lambda: run_experiment("fig11", context))
    print()
    print(result)
    assert result.data
