"""Benchmark regenerating Table III: training time.

The benchmarked unit is the full experiment driver (analysis + any model
training not already cached by earlier benchmarks in the session).
"""

from repro.experiments import run_experiment

from conftest import run_once


def test_table3(benchmark, context):
    """Table III: training time."""
    result = run_once(benchmark, lambda: run_experiment("table3", context))
    print()
    print(result)
    assert result.data
