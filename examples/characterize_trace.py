"""Reproduce the paper's Section III characterization on a simulated trace.

Prints, for one trace: the offender-node and affected-aprun cabinet grids
(Figs. 1-2), application SBE skew (Fig. 3), utilization correlations
(Fig. 4), temperature/power grids (Fig. 5), SBE-free vs SBE-affected
period distributions (Figs. 6-7), and the repeated-run profile comparison
(Fig. 8).

Run:  python examples/characterize_trace.py [preset]

The optional preset (``tiny`` | ``small`` | ``default``) controls the
simulation scale; ``small`` is the default here and takes ~15 seconds.
"""

import sys

from repro.analysis import (
    app_sbe_skew,
    cabinet_grids,
    offender_day_coverage,
    period_distributions,
    run_profile_pairs,
    utilization_correlations,
)
from repro.experiments.presets import preset_config
from repro.telemetry import simulate_trace
from repro.utils.tables import format_grid


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(f"simulating preset {preset!r} ...")
    trace = simulate_trace(preset_config(preset))
    print(
        f"  {trace.machine.num_nodes} nodes, {trace.num_runs} runs, "
        f"{trace.num_samples} samples, positive rate {trace.positive_rate():.2%}\n"
    )

    grids = cabinet_grids(trace)
    print(format_grid(grids.offender_nodes, title="[Fig 1] offender nodes / cabinet"))
    print()
    print(format_grid(grids.affected_apruns, title="[Fig 2] affected apruns / cabinet"))
    print()

    coverage = offender_day_coverage(trace)
    print(
        f"[Fig 1 inset] offenders erring on <20% of days: "
        f"{(coverage < 0.2).mean():.0%} (paper ~80%)\n"
    )

    skew = app_sbe_skew(trace)
    print(
        f"[Fig 3] {skew.num_affected}/{skew.num_apps} apps SBE-affected; "
        f"top 20% hold {skew.top20_share:.0%} of SBEs (paper >90%)"
    )

    corr = utilization_correlations(trace)
    print(
        f"[Fig 4] spearman(norm SBE, core-hours) = {corr['core_hours']:.2f} "
        f"(paper 0.89); spearman(norm SBE, memory) = {corr['memory']:.2f} "
        f"(paper 0.70)\n"
    )

    print(format_grid(grids.mean_temperature, title="[Fig 5a] mean GPU temp / cabinet"))
    print()
    print(format_grid(grids.mean_power, title="[Fig 5b] mean GPU power / cabinet"))
    print(
        f"[Fig 5] spearman(cumulative temp, offenders) = "
        f"{grids.temp_sbe_spearman:.2f} (paper 0.07: weak)\n"
    )

    dist = period_distributions(trace)
    print(
        f"[Fig 6] offender temp: SBE-free {dist.temp_free.mean():.1f} C vs "
        f"SBE-affected {dist.temp_affected.mean():.1f} C "
        f"({dist.temp_elevation:+.1f} C; paper +3 C)"
    )
    print(
        f"[Fig 7] offender power: SBE-free {dist.power_free.mean():.1f} W vs "
        f"SBE-affected {dist.power_affected.mean():.1f} W "
        f"({dist.power_elevation:+.1f} W; paper +15 W)\n"
    )

    node = trace.config.record_nodes[0]
    profiles = run_profile_pairs(trace, node, max_pairs=2)
    print(f"[Fig 8] repeated runs of one app on node {node}:")
    for i, profile in enumerate(profiles, start=1):
        print(
            f"  run {i}: GPU temp mean {profile['gpu_temp'].mean():.1f} C "
            f"(slot avg {profile['slot_avg_temp'].mean():.1f} C, "
            f"CPU {profile['cpu_temp'].mean():.1f} C, "
            f"power {profile['gpu_power'].mean():.0f} W)"
        )
    print("  -> profiles differ across runs because neighbours differ.")


if __name__ == "__main__":
    main()
