"""Fault-injection quickstart: degrade a trace, repair it, measure the cost.

Real Titan telemetry had out-of-band sampler gaps, nvidia-smi SBE counter
resets, duplicated log shipments, and node downtime.  This example walks
the robustness loop end to end at a small scale:

1. simulate a clean trace and record the TwoStage-GBDT baseline F1;
2. inject a seeded mix of faults at increasing intensity;
3. sanitize the degraded trace (dedupe, reorder, reconcile counters,
   impute sensors, quarantine irrecoverable rows);
4. rebuild features, retrain, and report the F1 degradation curve.

Run:  python examples/fault_injection.py
"""

import warnings

from repro import PredictionPipeline, TraceConfig, simulate_trace
from repro.faults import FaultSpec, inject_faults, sanitize_trace
from repro.telemetry.config import ErrorModelConfig
from repro.topology import MachineConfig
from repro.utils.errors import DegradedDataWarning


def main() -> None:
    # Same small machine as examples/quickstart.py: 24 cabinets, 20 days,
    # hot error model so the short trace has SBEs to learn from.
    config = TraceConfig(
        machine=MachineConfig(
            grid_x=6, grid_y=4, cages_per_cabinet=1, slots_per_cage=1, nodes_per_slot=4
        ),
        errors=ErrorModelConfig(
            base_rate_per_hour=0.004,
            offender_node_fraction=0.25,
            offender_median_boost=2.0,
            episode_rate_per_100_days=30.0,
            episode_median_days=3.0,
            quiet_day_factor=0.01,
        ),
        duration_days=20.0,
        tick_minutes=10.0,
        seed=7,
    )
    print("simulating clean trace ...")
    trace = simulate_trace(config)
    print(f"  {trace.num_samples} samples, {trace.positive_rate():.1%} SBE-affected")

    # The sanitizer is an exact no-op on a clean trace.
    repaired, report = sanitize_trace(trace)
    print(f"  sanitizer on the clean trace: {report.summary()}")

    print("training the clean baseline (TwoStage + GBDT on DS1) ...")
    baseline = PredictionPipeline.from_trace(trace).evaluate_twostage("DS1", "gbdt")
    print(f"  baseline F1 = {baseline.f1:.3f}")

    print("\nfault-intensity sweep:")
    print(f"  {'intensity':>9} {'F1':>6} {'drop':>6} {'quarantined':>11}  faults")
    for intensity in (0.1, 0.25, 0.5):
        faulty, log = inject_faults(trace, FaultSpec(intensity=intensity), seed=7)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedDataWarning)
            repaired, report = sanitize_trace(faulty)
        result = PredictionPipeline.from_trace(repaired).evaluate_twostage(
            "DS1", "gbdt"
        )
        summary = " ".join(f"{k}={v}" for k, v in log.summary().items())
        print(
            f"  {intensity:>9.2f} {result.f1:>6.3f} "
            f"{baseline.f1 - result.f1:>6.3f} "
            f"{report.quarantined_fraction:>11.1%}  {summary}"
        )

    print("\nDone.  `repro --preset small faults` runs the same sweep on the")
    print("cached preset trace; DESIGN.md §7 documents the fault model.")


if __name__ == "__main__":
    main()
