"""Forecast pre-run telemetry features with time-series models.

Paper, Discussion (Section VIII): some TwoStage inputs — the temperature
and power profile of the upcoming run — cannot be known before execution
and must be forecast with ARMA/ARIMA-family tools.  This example:

1. takes a recorded node's telemetry series from a simulated trace;
2. fits :class:`repro.ml.ARForecaster` on a training prefix;
3. forecasts the next hour and compares against the actual series;
4. shows how the forecast slots into the feature vector the TwoStage
   predictor consumes.

Run:  python examples/feature_forecasting.py
"""

import numpy as np

from repro.experiments.presets import preset_config
from repro.ml import ARForecaster
from repro.telemetry import simulate_trace


def main() -> None:
    print("simulating trace (preset 'tiny') ...")
    trace = simulate_trace(preset_config("tiny"))
    node = trace.config.record_nodes[0]
    series = trace.recorded_series[node]
    temp = series["gpu_temp"]
    power = series["gpu_power"]
    tick = trace.config.tick_minutes
    horizon = max(1, int(round(60.0 / tick)))  # forecast one hour ahead

    split = temp.size - horizon
    print(
        f"node {node}: {temp.size} telemetry snapshots at {tick:.0f}-minute "
        f"cadence; forecasting the last {horizon} ({60:.0f} minutes)\n"
    )

    for name, values, order, diff in (
        ("GPU temperature (C)", temp, 6, 0),
        ("GPU power (W)", power, 6, 0),
    ):
        model = ARForecaster(order=order, diff=diff)
        model.fit(values[:split])
        forecast = model.forecast(horizon)
        actual = values[split:]
        mae = float(np.abs(forecast - actual).mean())
        naive = float(np.abs(values[split - 1] - actual).mean())
        print(f"{name}:")
        print(f"  forecast: {np.round(forecast[:6], 1)} ...")
        print(f"  actual:   {np.round(actual[:6], 1)} ...")
        print(
            f"  MAE = {mae:.2f} (persistence baseline {naive:.2f}; "
            f"in-sample residual std {model.fitted_residuals().std():.2f})\n"
        )

    # How this feeds prediction: the forecast hour substitutes for the
    # "pre-execution window" features of a run about to start.
    model = ARForecaster(order=6).fit(temp[:split])
    forecast = model.forecast(horizon)
    print("forecast-derived pre-run features (mean/std/delta-stats):")
    deltas = np.diff(forecast)
    print(
        f"  pre60_temp_mean={forecast.mean():.2f} "
        f"pre60_temp_std={forecast.std():.2f} "
        f"pre60_temp_dmean={deltas.mean():.3f} "
        f"pre60_temp_dstd={deltas.std():.3f}"
    )
    print(
        "These are drop-in replacements for the same columns the feature\n"
        "builder computes from measured telemetry (repro.features.builder)."
    )


if __name__ == "__main__":
    main()
