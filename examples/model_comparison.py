"""Compare the four stage-2 models across all three datasets.

Reproduces the substance of the paper's Fig. 10 and Tables II-III at the
scale of your choice: F1/precision/recall per model per dataset plus
training time, next to the Basic A baseline.

Run:  python examples/model_comparison.py [preset]
"""

import sys

from repro.core.registry import MODEL_NAMES
from repro.experiments import ExperimentContext
from repro.utils.tables import format_table


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "small"
    context = ExperimentContext(preset, use_disk_cache=False)
    print(f"simulating + building features for preset {preset!r} ...\n")

    rows = []
    for split in context.split_names():
        basic = context.basic(split, "basic_a")
        rows.append((split, "basic_a", basic.f1, basic.precision, basic.recall, 0.0))
        for model in MODEL_NAMES:
            result = context.twostage(split, model)
            rows.append(
                (
                    split,
                    model,
                    result.f1,
                    result.precision,
                    result.recall,
                    result.train_seconds,
                )
            )
    print(
        format_table(
            ["dataset", "model", "F1", "precision", "recall", "train (s)"],
            rows,
            title="TwoStage model comparison (paper Fig. 10 / Tables II-III)",
        )
    )

    by_model = {
        model: [r[2] for r in rows if r[1] == model] for model in MODEL_NAMES
    }
    mean_f1 = {model: sum(v) / len(v) for model, v in by_model.items()}
    best = max(mean_f1, key=mean_f1.get)
    print(
        f"\nBest mean F1 across datasets: {best} ({mean_f1[best]:.3f}) "
        "-- the paper's winner is GBDT."
    )


if __name__ == "__main__":
    main()
