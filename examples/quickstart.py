"""Quickstart: simulate a trace, train the TwoStage predictor, evaluate.

This walks the paper's whole pipeline end to end at a small scale:

1. simulate a synthetic-Titan telemetry trace (the data substrate);
2. build the temporal/spatial/history feature matrix;
3. split it time-ordered (train window, then test window);
4. train the TwoStage predictor with the paper's best model (GBDT);
5. compare against the Basic A baseline.

Run:  python examples/quickstart.py
"""

from repro import PredictionPipeline, TraceConfig, simulate_trace
from repro.core.baselines import BasicA
from repro.ml.metrics import classification_report
from repro.telemetry.config import ErrorModelConfig
from repro.topology import MachineConfig


def main() -> None:
    # A small machine: 6 x 4 cabinet grid, 4 nodes per cabinet, 20 days.
    # The error model is turned up so the short trace still contains a
    # healthy number of SBEs to learn from.
    config = TraceConfig(
        machine=MachineConfig(
            grid_x=6, grid_y=4, cages_per_cabinet=1, slots_per_cage=1, nodes_per_slot=4
        ),
        errors=ErrorModelConfig(
            base_rate_per_hour=0.004,
            offender_node_fraction=0.25,
            offender_median_boost=2.0,
            episode_rate_per_100_days=30.0,
            episode_median_days=3.0,
            quiet_day_factor=0.01,
        ),
        duration_days=20.0,
        tick_minutes=10.0,
        seed=7,
    )
    print("simulating trace ...")
    trace = simulate_trace(config)
    print(
        f"  {trace.num_runs} application runs, {trace.num_samples} (app, node) "
        f"samples, {trace.positive_rate():.1%} SBE-affected"
    )

    print("building features and splits ...")
    pipeline = PredictionPipeline.from_trace(trace)

    print("training TwoStage + GBDT on DS1 ...")
    result = pipeline.evaluate_twostage("DS1", "gbdt")
    print(f"  trained in {result.train_seconds:.1f}s")

    baseline = pipeline.evaluate_basic("DS1", "basic_a")

    print("\nSBE-class results on the test window:")
    for name, res in (("Basic A", baseline), ("TwoStage+GBDT", result)):
        print(
            f"  {name:14s} precision={res.precision:.3f} "
            f"recall={res.recall:.3f} F1={res.f1:.3f}"
        )

    report = classification_report(result.y_true, result.y_pred)
    print(
        "\nnon-SBE class (GBDT): "
        f"precision={report['non_sbe']['precision']:.3f} "
        f"recall={report['non_sbe']['recall']:.3f}"
    )
    print("\nDone.  See examples/characterize_trace.py for the paper's")
    print("Section III analyses and examples/ecc_scheduling.py for the")
    print("prediction-driven ECC application.")


if __name__ == "__main__":
    main()
