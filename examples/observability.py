"""Observing a run end to end: chaos replay -> live scrape -> obs report.

Demonstrates the unified observability layer (``repro.obs``):

1. Replay the trace through the serving path under a chaos plan with a
   fresh metrics registry installed, and show the resilience story the
   metrics tell — circuit-breaker trips, dead-letter quarantines, and
   the replayed (re-scored) rows.
2. Stand up the fleet gateway behind its HTTP front end, drive a small
   synthetic fleet through it, and scrape ``GET /metrics`` — live
   Prometheus text exposition (format 0.0.4) from the same registry.
3. Write the snapshot to disk and render the ``repro obs report`` view,
   whose digest covers only deterministic metrics (same seed -> same
   digest; wall-clock readings are excluded by construction).

Run:  python examples/observability.py [preset]
"""

import asyncio
import sys
import tempfile
from pathlib import Path

from repro.experiments.presets import preset_config, split_plan
from repro.features.splits import make_paper_splits
from repro.gateway import (
    GatewayConfig,
    GatewayHTTPServer,
    build_gateway,
    http_request,
    run_fleet,
)
from repro.obs import (
    MetricsRegistry,
    render_report,
    use_registry,
    write_snapshot,
)
from repro.serve import ChaosPlan, serve_replay
from repro.telemetry import simulate_trace


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    print(f"simulating preset {preset!r} ...")
    plan = split_plan(preset)
    workdir = Path(tempfile.mkdtemp(prefix="observability-"))
    # Longer outage windows than the default plan, so the circuit breaker
    # visibly trips, cools down, half-opens, and closes again.
    chaos = ChaosPlan(
        intensity=0.5, seed=7, outage_windows=6.0, outage_span=0.12
    )

    with use_registry(MetricsRegistry()) as registry:
        trace = simulate_trace(preset_config(preset))
        splits = make_paper_splits(
            train_days=plan["train_days"],
            test_days=plan["test_days"],
            offsets_days=tuple(plan["offsets"]),
            duration_days=trace.config.duration_days,
        )

        # -- 1. chaos replay, instrumented ------------------------------
        print(f"\n== chaos replay (intensity {chaos.intensity}) ==")
        report = serve_replay(
            trace,
            workdir / "registry",
            splits=splits,
            batch_size=64,
            fast=True,
            chaos=chaos,
        )
        print(f"replayed {report.num_events} events")
        transitions = registry.counter("repro_serve_breaker_transitions_total")
        for key, value in transitions.samples():
            labels = dict(key)
            print(
                f"  breaker {labels.get('from')} -> {labels.get('to')}: "
                f"{value:g}"
            )
        dead = registry.counter("repro_serve_dead_letters_total")
        replayed = registry.counter("repro_serve_replayed_rows_total")
        print(f"  dead letters quarantined: {sum(v for _, v in dead.samples()):g}")
        for key, value in replayed.samples():
            print(f"  rows re-scored via {dict(key).get('resolution')}: {value:g}")

        # -- 2. live /metrics scrape from the gateway --------------------
        print("\n== gateway /metrics scrape ==")

        async def drive_and_scrape():
            gateway = build_gateway(
                trace,
                workdir / "gateway-registry",
                splits=splits,
                config=GatewayConfig(shards=2, batch_size=64),
                fast=True,
            )
            await gateway.start()
            server = GatewayHTTPServer(gateway)
            await server.start()
            await run_fleet(gateway, trace, clients=2, server=server)
            status, body = await http_request(
                server.host, server.port, "GET", "/metrics"
            )
            await server.close()
            await gateway.close()
            return status, body

        status, body = asyncio.run(drive_and_scrape())
        print(f"GET /metrics -> {status}, {len(body.splitlines())} lines; gateway slice:")
        for line in body.splitlines():
            if line.startswith("repro_gateway") and "_bucket" not in line:
                print(f"  {line}")

        # -- 3. snapshot + report ----------------------------------------
        print("\n== obs report ==")
        snapshot = write_snapshot(
            workdir / "obs-snapshot.json",
            registry,
            run={"example": "observability", "preset": preset},
        )
        print(render_report(snapshot, events_limit=8))
        print(f"artifacts left under {workdir}")


if __name__ == "__main__":
    main()
