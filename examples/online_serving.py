"""Online serving walkthrough: registry, streaming features, live scoring.

The paper's TwoStage predictor is meant to run online: samples are
scored as their runs complete, and the model is retrained periodically
as new offender nodes appear.  This example walks the serving subsystem
end to end at a small scale:

1. simulate a trace and train the batch TwoStage oracle;
2. publish the fitted model to a versioned, checksummed registry;
3. replay the trace as a telemetry event stream through the streaming
   feature engine (bit-identical to the batch feature builder) and the
   micro-batching scorer;
4. compare online alerts against the batch predictions — they agree
   sample for sample;
5. run the same replay with a periodic-retrain loop that hot-swaps new
   registry versions as labels resolve.

Run:  python examples/online_serving.py
"""

import tempfile
from pathlib import Path

from repro import TraceConfig, simulate_trace
from repro.features.splits import make_paper_splits
from repro.serve import serve_replay
from repro.serve.registry import list_versions
from repro.telemetry.config import ErrorModelConfig
from repro.topology import MachineConfig


def main() -> None:
    # A small machine with a hot error model so 16 days hold both classes.
    config = TraceConfig(
        machine=MachineConfig(
            grid_x=6, grid_y=4, cages_per_cabinet=1, slots_per_cage=1, nodes_per_slot=4
        ),
        errors=ErrorModelConfig(
            base_rate_per_hour=0.004,
            offender_node_fraction=0.25,
            offender_median_boost=2.0,
            episode_rate_per_100_days=30.0,
            episode_median_days=3.0,
            quiet_day_factor=0.01,
        ),
        duration_days=16.0,
        tick_minutes=10.0,
        seed=7,
    )
    print("simulating 16 days on a 96-node machine ...")
    trace = simulate_trace(config)
    splits = make_paper_splits(
        train_days=10.0,
        test_days=3.0,
        offsets_days=(0.0, 1.5, 3.0),
        duration_days=config.duration_days,
    )

    with tempfile.TemporaryDirectory() as tmp:
        registry_root = Path(tmp) / "registry"

        # --- frozen model: the online path must match the batch oracle ---
        print("\n=== replay with a frozen model ===")
        report = serve_replay(
            trace,
            registry_root,
            splits=splits,
            split="DS1",
            model="gbdt",
            batch_size=128,
            flush_deadline_minutes=30.0,
            fast=True,
        )
        print(report)
        assert report.agreement == 1.0, "online must reproduce batch exactly"
        assert report.f1_delta == 0.0

        # --- periodic retrain: new registry versions, hot-swapped live ---
        print("\n=== replay with retraining every simulated day ===")
        report = serve_replay(
            trace,
            registry_root,
            splits=splits,
            split="DS1",
            model="gbdt",
            batch_size=128,
            retrain_every_days=1.0,
            fast=True,
        )
        print(report)

        print("\nregistry contents:")
        for version in list_versions(registry_root):
            extra = (
                f"retrained at minute {version.metadata['retrained_at_minute']:g}"
                if "retrained_at_minute" in version.metadata
                else f"initial fit on {version.metadata.get('split', '?')}"
            )
            print(
                f"  v{version.version:04d}  {version.model_name:>5s}  "
                f"{len(version.feature_names)} features  ({extra})"
            )


if __name__ == "__main__":
    main()
