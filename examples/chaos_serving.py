"""Fault-tolerant serving: chaos replay, kill-and-resume, registry audit.

Demonstrates the resilience layer around the online serving path:

1. Replay the trace under a moderate-intensity chaos plan — transient
   and persistent scorer faults, simulated stalls, corrupted hot-swap
   artifacts, malformed event bursts — and show where every row ended
   up (primary model, fallback chain, dead-letter replay).
2. Kill the same replay mid-stream with the ``crash_after_events`` test
   hook, resume it from the last checkpoint, and verify the resumed
   digest is bit-identical to the uninterrupted run.
3. Audit the registry the chaos replay left behind (``registry
   verify`` surface): corrupted hot-swap versions show up as
   ``corrupt-payload``, the served versions as ``ok``.

Run:  python examples/chaos_serving.py [preset]
"""

import sys
import tempfile
from pathlib import Path

from repro.experiments.presets import preset_config
from repro.serve import ChaosPlan, ModelRegistry, serve_replay
from repro.telemetry import simulate_trace
from repro.utils.errors import SimulatedCrashError


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    print(f"simulating preset {preset!r} ...")
    trace = simulate_trace(preset_config(preset))
    plan = ChaosPlan(intensity=0.25, seed=7)
    workdir = Path(tempfile.mkdtemp(prefix="chaos-serving-"))

    # -- 1. one uninterrupted chaos replay ---------------------------------
    print(f"\n== chaos replay (intensity {plan.intensity}, seed {plan.seed}) ==")
    report = serve_replay(
        trace,
        workdir / "registry-a",
        batch_size=64,
        fast=True,
        retrain_every_days=4.0,
        chaos=plan,
    )
    print(report)
    r = report.resilience
    print(
        f"\nrow disposition: {r.primary_rows} primary, {r.fallback_rows} "
        f"fallback, {r.replayed_rows} recovered via dead-letter replay "
        f"-> availability {r.availability:.4f}"
    )

    # -- 2. kill it mid-stream, then resume --------------------------------
    crash_at = max(report.num_events * 3 // 5, 1)
    print(f"\n== kill at event {crash_at}, then --resume ==")
    try:
        serve_replay(
            trace,
            workdir / "registry-b",
            batch_size=64,
            fast=True,
            retrain_every_days=4.0,
            chaos=plan,
            checkpoint_dir=workdir / "ckpt",
            checkpoint_every_events=max(report.num_events // 7, 1),
            crash_after_events=crash_at,
        )
    except SimulatedCrashError as exc:
        print(f"killed: {exc}")
    resumed = serve_replay(
        trace,
        workdir / "registry-b",
        batch_size=64,
        fast=True,
        retrain_every_days=4.0,
        chaos=plan,
        checkpoint_dir=workdir / "ckpt",
        resume=True,
    )
    print(f"resumed from event {resumed.resumed_from}")
    match = resumed.digest() == report.digest()
    print(f"resumed digest == uninterrupted digest: {match}")
    if not match:
        raise SystemExit("resume determinism broken!")

    # -- 3. audit what chaos did to the registry ---------------------------
    print("\n== registry verify ==")
    for version, status in ModelRegistry(workdir / "registry-a").verify():
        print(f"  twostage/v{version:04d}  {status}")
    print(f"\nartifacts left under {workdir}")


if __name__ == "__main__":
    main()
