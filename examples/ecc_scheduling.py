"""Prediction-driven dynamic ECC protection (paper Discussion, Section VIII).

The paper motivates SBE prediction with a concrete application: ECC
protection costs up to ~10% of performance on memory-bound GPU codes, so
a site could disable ECC for runs the predictor labels safe.  This
example trains the TwoStage + GBDT predictor, then replays three policies
over the test window:

* ``always_on``   -- today's conservative default: no savings, no risk;
* ``predictive``  -- ECC off only when the predictor says SBE-free;
* ``always_off``  -- what some computational scientists already do.

Accounting: core-hours saved by running without ECC overhead, SBEs
*exposed* (occurred while unprotected), and the cost of re-executing the
exposed runs with ECC on.

Run:  python examples/ecc_scheduling.py
"""

from repro.core import EccPolicySimulator, PredictionPipeline
from repro.experiments.presets import preset_config
from repro.telemetry import simulate_trace
from repro.utils.tables import format_table


def main() -> None:
    print("simulating trace (preset 'small') ...")
    trace = simulate_trace(preset_config("small"))
    pipeline = PredictionPipeline.from_trace(trace)

    print("training TwoStage + GBDT ...")
    result = pipeline.evaluate_twostage("DS1", "gbdt")
    print(
        f"  predictor quality: precision={result.precision:.2f} "
        f"recall={result.recall:.2f} F1={result.f1:.2f}\n"
    )

    simulator = EccPolicySimulator(ecc_overhead=0.10, reexecute_exposed=True)
    reports = simulator.compare_policies(result)

    rows = [
        (
            r.policy,
            f"{r.ecc_off_fraction:.0%}",
            r.overhead_saved_core_hours,
            r.exposed_sbe_samples,
            r.reexecution_core_hours,
            r.net_saved_core_hours,
        )
        for r in reports
    ]
    print(
        format_table(
            [
                "policy",
                "ECC off",
                "saved (core-h)",
                "exposed SBEs",
                "re-exec cost",
                "net saved",
            ],
            rows,
            title="ECC policies over the DS1 test window",
            float_fmt="{:.0f}",
        )
    )

    predictive = next(r for r in reports if r.policy == "predictive")
    always_off = next(r for r in reports if r.policy == "always_off")
    print(
        f"\nThe predictive policy keeps "
        f"{1 - predictive.exposed_sbe_samples / max(1, always_off.exposed_sbe_samples):.0%} "
        "of naive-off's exposure out of harm's way while retaining "
        f"{predictive.overhead_saved_core_hours / max(1e-9, always_off.overhead_saved_core_hours):.0%} "
        "of its overhead savings."
    )


if __name__ == "__main__":
    main()
