"""Explore the precision/recall trade-off of the TwoStage predictor.

The paper evaluates with F1 because "the main goal of any prediction
mechanism is to improve precision without sacrificing recall", and the
two conflict.  Operationally the trade-off is a *policy knob*: a site
that fears missed SBEs (e.g. long unprotected re-executions) wants a low
decision threshold; a site that fears needless ECC-on runs wants a high
one.  This example sweeps the stage-2 decision threshold and prints the
frontier, then picks the F1-optimal and the recall>=0.95 operating
points.

Run:  python examples/threshold_tuning.py
"""

import numpy as np

from repro.core import PredictionPipeline, TwoStagePredictor
from repro.core.evaluation import precision_recall_curve
from repro.experiments.presets import preset_config
from repro.telemetry import simulate_trace
from repro.utils.tables import format_table


def main() -> None:
    print("simulating trace (preset 'tiny') ...")
    trace = simulate_trace(preset_config("tiny"))
    pipeline = PredictionPipeline.from_trace(trace)
    train, test = pipeline.train_test("DS1")

    print("training TwoStage + GBDT ...")
    predictor = TwoStagePredictor("gbdt", random_state=0).fit(train)
    proba = predictor.predict_proba(test)

    curve = precision_recall_curve(test.y, proba, num_thresholds=20)
    rows = [
        (f"{t:.2f}", p, r, f1)
        for t, p, r, f1 in zip(
            curve["thresholds"], curve["precision"], curve["recall"], curve["f1"]
        )
        if 0.05 <= t <= 0.95
    ][::2]
    print()
    print(
        format_table(
            ["threshold", "precision", "recall", "F1"],
            rows,
            title="Decision-threshold sweep (TwoStage + GBDT, DS1 test window)",
        )
    )

    best = int(np.argmax(curve["f1"]))
    print(
        f"\nF1-optimal threshold: {curve['thresholds'][best]:.2f} "
        f"(precision={curve['precision'][best]:.2f}, "
        f"recall={curve['recall'][best]:.2f}, F1={curve['f1'][best]:.2f})"
    )

    safe = np.nonzero(curve["recall"] >= 0.95)[0]
    if safe.size:
        k = int(safe[np.argmax(curve["precision"][safe])])
        print(
            f"conservative (recall >= 0.95) threshold: "
            f"{curve['thresholds'][k]:.2f} "
            f"(precision={curve['precision'][k]:.2f}, "
            f"recall={curve['recall'][k]:.2f})"
        )
    print(
        "\nThe paper's preference for high recall ('missing an SBE is more"
        "\nsevere than mislabeling a non-SBE') corresponds to the low-"
        "threshold end of this frontier."
    )


if __name__ == "__main__":
    main()
