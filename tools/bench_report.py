#!/usr/bin/env python
"""Aggregate BENCH_*.json artifacts into one trajectory table.

Every benchmark harness in this repo (tools/../benches, the gateway
bench, the hot-path kernel bench) drops a ``BENCH_<name>.json`` at the
repo root.  Each file has its own shape, so this tool owns one small
extractor per name and flattens everything into ``metric -> value``
rows with a known *direction* (higher-is-better throughput vs
lower-is-better latency/RSS).  That flat view is what the regression
gate compares.

Usage::

    python tools/bench_report.py                    # print the table
    python tools/bench_report.py --check            # + regression gate
    python tools/bench_report.py --write-baseline   # pin current values

``--check`` compares the current metrics against the committed baseline
(``tools/bench_baseline.json``) and fails (exit 1) when any throughput
metric regresses by more than ``--threshold`` (default 20%) or any
latency/RSS metric inflates by more than the same factor.  Metrics
missing from either side are reported but never fail the gate — the
wiring must tolerate benches that have not been (re)run on this
machine, and a baseline that predates a newly added bench.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Regression direction per metric suffix: ``higher`` means a drop is a
#: regression (throughput); ``lower`` means a rise is one (latency, RSS).
HIGHER_IS_BETTER = ("rows_per_sec", "events_per_sec", "speedup")
LOWER_IS_BETTER = ("p50_ms", "p99_ms", "peak_rss_bytes", "seconds", "time_to_recover_days")

DEFAULT_BASELINE = "tools/bench_baseline.json"
DEFAULT_THRESHOLD = 0.20


def _direction(metric: str) -> str:
    """``higher`` / ``lower`` / ``info`` for one flattened metric name."""
    for suffix in HIGHER_IS_BETTER:
        if metric.endswith(suffix):
            return "higher"
    for suffix in LOWER_IS_BETTER:
        if metric.endswith(suffix):
            return "lower"
    return "info"


# -- per-file extractors -------------------------------------------------


def extract_scale(payload: dict) -> dict[str, float]:
    """BENCH_scale.json: monolithic vs segmented feature-build run."""
    metrics: dict[str, float] = {}
    for leg in ("monolithic", "segmented"):
        data = payload.get(leg)
        if not isinstance(data, dict):
            continue
        for key in ("rows_per_sec", "peak_rss_bytes", "seconds"):
            if key in data:
                metrics[f"scale.{leg}.{key}"] = float(data[key])
    return metrics


def extract_gateway(payload: dict) -> dict[str, float]:
    """BENCH_gateway.json: one point per shard count."""
    metrics: dict[str, float] = {}
    for point in payload.get("points", []):
        if not isinstance(point, dict) or "shards" not in point:
            continue
        prefix = f"gateway.shards{int(point['shards'])}"
        for key in ("events_per_sec", "p50_ms", "p99_ms"):
            if key in point:
                metrics[f"{prefix}.{key}"] = float(point[key])
    return metrics


def extract_hotpath(payload: dict) -> dict[str, float]:
    """BENCH_hotpath.json: ``{"entries": [{label, rows_per_sec, speedup?}]}``.

    The ``speedup`` ratios (flat kernel vs the legacy per-tree loop on
    the same machine) are what the committed baseline pins — absolute
    rows/sec are machine-specific, and CI re-measures this bench with
    ``--quick`` on whatever box it lands on.
    """
    metrics: dict[str, float] = {}
    for entry in payload.get("entries", []):
        if not isinstance(entry, dict) or "label" not in entry:
            continue
        label = str(entry["label"]).replace(" ", "_")
        if "rows_per_sec" in entry:
            metrics[f"hotpath.{label}.rows_per_sec"] = float(entry["rows_per_sec"])
        if "speedup" in entry:
            metrics[f"hotpath.{label}.speedup"] = float(entry["speedup"])
    return metrics


def extract_drift(payload: dict) -> dict[str, float]:
    """BENCH_drift.json: drift-experiment recovery and lifecycle counts."""
    metrics: dict[str, float] = {}
    for key in (
        "time_to_recover_days",
        "retrains",
        "drift_retrains",
        "rejected",
        "rollbacks",
        "poison_rollbacks",
        "stale_f1",
        "governed_f1",
        "fresh_f1",
        "governed_gap",
    ):
        if key in payload:
            metrics[f"drift.{key}"] = float(payload[key])
    return metrics


EXTRACTORS = {
    "BENCH_scale.json": extract_scale,
    "BENCH_gateway.json": extract_gateway,
    "BENCH_hotpath.json": extract_hotpath,
    "BENCH_drift.json": extract_drift,
}


def collect_metrics(root: Path) -> dict[str, float]:
    """Flatten every recognized ``BENCH_*.json`` under ``root``.

    Missing files are skipped silently (benches are optional); damaged
    ones are skipped with a note on stderr — the report must never fail
    because one artifact is stale or torn.
    """
    metrics: dict[str, float] = {}
    for name, extractor in sorted(EXTRACTORS.items()):
        path = root / name
        if not path.exists():
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench_report: skipping {name}: {exc}", file=sys.stderr)
            continue
        if isinstance(payload, dict):
            metrics.update(extractor(payload))
    return metrics


# -- regression gate -----------------------------------------------------


def check_regressions(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Return one message per metric that regressed past ``threshold``.

    Only metrics present on *both* sides participate; ``info`` metrics
    (no known direction) never fail.
    """
    failures: list[str] = []
    for metric in sorted(set(current) & set(baseline)):
        base, now = baseline[metric], current[metric]
        direction = _direction(metric)
        if base <= 0 or direction == "info":
            continue
        if direction == "higher" and now < base * (1.0 - threshold):
            failures.append(
                f"{metric}: {now:g} is {100 * (1 - now / base):.1f}% below "
                f"baseline {base:g} (limit {100 * threshold:.0f}%)"
            )
        elif direction == "lower" and now > base * (1.0 + threshold):
            failures.append(
                f"{metric}: {now:g} is {100 * (now / base - 1):.1f}% above "
                f"baseline {base:g} (limit {100 * threshold:.0f}%)"
            )
    return failures


def render_table(
    current: dict[str, float], baseline: dict[str, float] | None = None
) -> str:
    """The trajectory table: metric, direction, baseline, current, delta."""
    if not current:
        return "no BENCH_*.json artifacts found"
    baseline = baseline or {}
    header = f"{'metric':<34}  {'dir':<6}  {'baseline':>12}  {'current':>12}  {'delta':>8}"
    lines = [header, "-" * len(header)]
    for metric in sorted(current):
        now = current[metric]
        base = baseline.get(metric)
        if base is None or base == 0:
            base_text, delta_text = "-", "-"
        else:
            base_text = f"{base:g}"
            delta_text = f"{100 * (now - base) / base:+.1f}%"
        lines.append(
            f"{metric:<34}  {_direction(metric):<6}  {base_text:>12}  "
            f"{now:>12g}  {delta_text:>8}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=str(Path(__file__).resolve().parent.parent),
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline metrics JSON (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any metric regresses past --threshold vs the baseline",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional regression (default: 0.20 = 20%%)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="pin the current metrics as the new baseline file",
    )
    args = parser.parse_args(argv)

    root = Path(args.dir)
    current = collect_metrics(root)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / "tools" / "bench_baseline.json"
    )
    baseline: dict[str, float] = {}
    if baseline_path.exists():
        try:
            baseline = {
                str(k): float(v)
                for k, v in json.loads(baseline_path.read_text()).items()
            }
        except (OSError, json.JSONDecodeError, TypeError, ValueError) as exc:
            print(f"bench_report: bad baseline {baseline_path}: {exc}", file=sys.stderr)

    if args.write_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline ({len(current)} metrics) -> {baseline_path}")
        return 0

    print(render_table(current, baseline))
    if not args.check:
        return 0
    if not baseline:
        print("\nno baseline pinned; regression gate passes vacuously")
        return 0
    failures = check_regressions(current, baseline, args.threshold)
    if failures:
        print(f"\n{len(failures)} regression(s) past the gate:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    checked = len(set(current) & set(baseline))
    print(f"\nregression gate ok ({checked} metric(s) within {100 * args.threshold:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
