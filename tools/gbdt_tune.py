import time
import numpy as np
from repro.telemetry import Trace
from repro.features import build_features
from repro.core import PredictionPipeline
from repro.core.twostage import TwoStagePredictor
from repro.ml import GradientBoostingClassifier

trace = Trace.load("/root/repo/.cache/e2e_trace")
features = build_features(trace)
pipe = PredictionPipeline(features)
train, test = pipe.train_test("DS1")

for label, params in [
    ("base 200x5", dict(n_estimators=200, max_depth=5)),
    ("300x6", dict(n_estimators=300, max_depth=6)),
    ("400x7 leaf10", dict(n_estimators=400, max_depth=7, min_samples_leaf=10)),
]:
    model = GradientBoostingClassifier(class_weight="balanced",
        early_stopping_fraction=0.1, random_state=0, subsample=0.8, **params)
    ts = TwoStagePredictor(model, scale=False)
    t0 = time.time()
    ts.fit(train)
    from repro.ml.metrics import precision_recall_f1
    p, r, f1 = precision_recall_f1(test.y, ts.predict(test))
    print(f"{label:15s} F1={f1:.3f} p={p:.3f} r={r:.3f} trees={model.n_estimators_} t={time.time()-t0:.0f}s")
