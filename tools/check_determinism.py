#!/usr/bin/env python
"""CI determinism gate: simulate + inject + replay twice, assert identical.

Runs the tiny-preset simulation twice with one seed, the sharded
simulation (2 row-shards on 2 worker processes) twice — which must be
bit-identical not just to itself but to the *serial* trace — the
scenario engine both ways (an empty scenario must be a bit-exact no-op
against the plain trace, and a scripted regime change must shard to the
serial bits), the fault injector stack twice on top, and the online
serve-replay path twice
(each against a fresh registry root), then compares content hashes of
the trace arrays, the fault logs, and the replay reports.  A
scoring-kernel backend-parity leg then replays once under the numba
kernel (skipped cleanly when numba is absent): its digest must be
bit-identical to the numpy replay, since the backends promise exact
score equality.  The same replay is then
repeated under a chaos plan (retries, fallbacks, dead-letter replay must
all be seed-stable), and finally killed mid-stream and resumed from its
checkpoint — the resumed digest must be bit-identical to the
uninterrupted chaos run.  A final leg exercises the durable segmented
store: a 4-segment out-of-core write must stream back the serial bits,
a simulation killed after one committed segment must resume from its
journal to the same digest, and every disk-fault kind (torn write, bit
flip, missing segment, stale manifest) must heal back to the serial
bits on load.  Any drift (a reordered RNG draw, an accidental
dependence on dict order or wall-clock) fails loudly here before it can
silently invalidate cached traces or experiment results.

Usage::

    PYTHONPATH=src python tools/check_determinism.py [--preset tiny]
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import hashlib
import shutil
import sys
import tempfile
import warnings
from pathlib import Path

import numpy as np

from repro.experiments.presets import PRESETS, preset_config, split_plan
from repro.scenarios import Scenario, scenario_preset
from repro.faults import FaultSpec, inject_faults
from repro.features.splits import make_paper_splits
from repro.gateway import GatewayConfig, build_gateway, run_fleet
from repro.ml.kernels import numba_available, use_backend
from repro.parallel.simulate import simulate_trace_sharded
from repro.serve import ChaosPlan, serve_replay
from repro.store import (
    DISK_FAULT_KINDS,
    DiskFaultSpec,
    SegmentedTraceStore,
    inject_disk_fault,
    simulate_trace_to_store,
    store_trace_digest,
)
from repro.telemetry.simulator import simulate_trace
from repro.telemetry.trace import Trace
from repro.utils.errors import DegradedDataWarning, SimulatedCrashError


def trace_digest(trace: Trace) -> str:
    """Stable content hash over every array in the trace."""
    hasher = hashlib.sha256()
    for name in sorted(trace.samples):
        hasher.update(name.encode())
        hasher.update(np.ascontiguousarray(trace.samples[name]).tobytes())
    for name in sorted(trace.runs):
        hasher.update(name.encode())
        hasher.update(np.ascontiguousarray(trace.runs[name]).tobytes())
    hasher.update(np.ascontiguousarray(trace.node_mean_temp).tobytes())
    hasher.update(np.ascontiguousarray(trace.node_mean_power).tobytes())
    hasher.update(np.ascontiguousarray(trace.node_susceptibility).tobytes())
    return hasher.hexdigest()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="tiny", choices=sorted(PRESETS))
    parser.add_argument("--fault-seed", type=int, default=7)
    parser.add_argument("--intensity", type=float, default=0.25)
    args = parser.parse_args(argv)

    failures = 0

    print(f"simulating preset {args.preset!r} twice ...", flush=True)
    trace_a = simulate_trace(preset_config(args.preset))
    trace_b = simulate_trace(preset_config(args.preset))
    digest_a, digest_b = trace_digest(trace_a), trace_digest(trace_b)
    if digest_a == digest_b:
        print(f"  trace ok ({digest_a[:16]}...)")
    else:
        print(f"  TRACE MISMATCH: {digest_a[:16]} != {digest_b[:16]}")
        failures += 1

    print("simulating sharded (2 shards, --jobs 2) twice ...", flush=True)
    sharded_digests = [
        trace_digest(
            simulate_trace_sharded(preset_config(args.preset), shards=2, jobs=2)
        )
        for _ in range(2)
    ]
    if sharded_digests[0] != sharded_digests[1]:
        print(
            f"  SHARDED MISMATCH: {sharded_digests[0][:16]} != "
            f"{sharded_digests[1][:16]}"
        )
        failures += 1
    elif sharded_digests[0] != digest_a:
        print(
            f"  SHARDED != SERIAL: {sharded_digests[0][:16]} != {digest_a[:16]}"
        )
        failures += 1
    else:
        print(f"  sharded ok (bit-identical to serial, {sharded_digests[0][:16]}...)")

    print("scenario engine: off-neutrality + sharded determinism ...", flush=True)
    # An *empty* scenario must be a bit-exact no-op against the plain
    # trace, and a scenario-on simulation must shard to the serial bits.
    empty_digest = trace_digest(
        simulate_trace(
            dataclasses.replace(preset_config(args.preset), scenario=Scenario())
        )
    )
    if empty_digest == digest_a:
        print("  empty scenario ok (bit-identical to no scenario)")
    else:
        print(f"  EMPTY SCENARIO MISMATCH: {empty_digest[:16]} != {digest_a[:16]}")
        failures += 1
    scenario_config = dataclasses.replace(
        preset_config(args.preset), scenario=scenario_preset("regime-change")
    )
    scenario_serial = trace_digest(simulate_trace(scenario_config))
    scenario_sharded = trace_digest(
        simulate_trace_sharded(scenario_config, shards=2, jobs=2)
    )
    if scenario_serial == digest_a:
        print("  SCENARIO IS A NO-OP: 'regime-change' left the trace unchanged")
        failures += 1
    elif scenario_sharded != scenario_serial:
        print(
            f"  SCENARIO SHARD MISMATCH: {scenario_sharded[:16]} != "
            f"{scenario_serial[:16]}"
        )
        failures += 1
    else:
        print(
            f"  scenario sharding ok ('regime-change' 2-shard == serial, "
            f"{scenario_serial[:16]}...)"
        )

    print(
        f"injecting faults (intensity={args.intensity}, "
        f"seed={args.fault_seed}) twice ...",
        flush=True,
    )
    spec = FaultSpec(intensity=args.intensity, seed=args.fault_seed)
    faulty_a, log_a = inject_faults(trace_a, spec)
    faulty_b, log_b = inject_faults(trace_b, spec)
    if trace_digest(faulty_a) == trace_digest(faulty_b):
        print("  faulty trace ok")
    else:
        print("  FAULTY TRACE MISMATCH")
        failures += 1
    if log_a.digest() == log_b.digest():
        print(f"  fault log ok ({log_a.digest()[:16]}..., {len(log_a)} events)")
    else:
        print(f"  FAULT LOG MISMATCH: {log_a.digest()[:16]} != {log_b.digest()[:16]}")
        failures += 1

    print("replaying the online serving path twice ...", flush=True)
    plan = split_plan(args.preset)
    splits = make_paper_splits(
        train_days=plan["train_days"],
        test_days=plan["test_days"],
        offsets_days=tuple(plan["offsets"]),
        duration_days=trace_a.config.duration_days,
    )
    replay_digests = []
    clean_report = None
    for _ in range(2):
        # A fresh registry root each time: version numbering must not
        # leak into the replay digest.
        with tempfile.TemporaryDirectory() as root:
            report = serve_replay(
                trace_a, root, splits=splits, batch_size=64, fast=True
            )
            replay_digests.append(report.digest())
            clean_report = report
    if replay_digests[0] == replay_digests[1]:
        print(f"  serve-replay ok ({replay_digests[0][:16]}...)")
    else:
        print(
            f"  SERVE-REPLAY MISMATCH: {replay_digests[0][:16]} != "
            f"{replay_digests[1][:16]}"
        )
        failures += 1

    print("gateway vs replay parity (1 shard, 1 client) ...", flush=True)

    async def run_gateway_once():
        with tempfile.TemporaryDirectory() as root:
            gateway = build_gateway(
                trace_a,
                root,
                splits=splits,
                config=GatewayConfig(shards=1, batch_size=64),
                fast=True,
            )
            await gateway.start()
            await run_fleet(gateway, trace_a, clients=1)
            await gateway.close()
            return gateway

    gateway = asyncio.run(run_gateway_once())
    if gateway.scored_alert_digest() == clean_report.scored_alert_digest():
        print(
            f"  gateway parity ok (scored-alert digest "
            f"{gateway.scored_alert_digest()[:16]}... matches serve-replay)"
        )
    else:
        print(
            f"  GATEWAY PARITY MISMATCH: {gateway.scored_alert_digest()[:16]} "
            f"!= {clean_report.scored_alert_digest()[:16]}"
        )
        failures += 1
    if gateway.stats.zero_drop:
        print(
            f"  gateway accounting ok ({gateway.stats.events_in} events in "
            "== scored + dead_lettered + rejected)"
        )
    else:
        print(f"  GATEWAY DROPPED EVENTS: {gateway.stats.to_dict()}")
        failures += 1

    print("scoring-kernel backend parity (numpy vs numba) ...", flush=True)
    if not numba_available():
        print("  numba not installed; skipped (numpy kernel is the digest oracle)")
    else:
        with tempfile.TemporaryDirectory() as root, use_backend("numba"):
            numba_report = serve_replay(
                trace_a, root, splits=splits, batch_size=64, fast=True
            )
        if numba_report.digest() == replay_digests[0]:
            print(
                f"  backend parity ok (numba replay digest "
                f"{numba_report.digest()[:16]}... matches numpy)"
            )
        else:
            print(
                f"  BACKEND PARITY MISMATCH: numba {numba_report.digest()[:16]} "
                f"!= numpy {replay_digests[0][:16]}"
            )
            failures += 1

    print("replaying under chaos twice ...", flush=True)
    chaos = ChaosPlan(intensity=args.intensity, seed=args.fault_seed)
    chaos_report = None
    chaos_digests = []
    for _ in range(2):
        with tempfile.TemporaryDirectory() as root:
            report = serve_replay(
                trace_a, root, splits=splits, batch_size=64, fast=True, chaos=chaos
            )
            chaos_digests.append(report.digest())
            chaos_report = report
    if chaos_digests[0] == chaos_digests[1]:
        resil = chaos_report.resilience
        print(
            f"  chaos replay ok ({chaos_digests[0][:16]}..., "
            f"availability {resil.availability:.4f}, "
            f"{resil.replayed_rows} rows via dead-letter replay)"
        )
    else:
        print(
            f"  CHAOS REPLAY MISMATCH: {chaos_digests[0][:16]} != "
            f"{chaos_digests[1][:16]}"
        )
        failures += 1

    print("killing the chaos replay mid-stream and resuming ...", flush=True)
    crash_after = max(chaos_report.num_events * 3 // 5, 1)
    checkpoint_every = max(chaos_report.num_events // 7, 1)
    with tempfile.TemporaryDirectory() as root:
        root_path = Path(root)
        kwargs = dict(
            splits=splits,
            batch_size=64,
            fast=True,
            chaos=chaos,
            checkpoint_dir=root_path / "ckpt",
        )
        try:
            serve_replay(
                trace_a,
                root_path / "registry",
                checkpoint_every_events=checkpoint_every,
                crash_after_events=crash_after,
                **kwargs,
            )
        except SimulatedCrashError as exc:
            print(f"  killed: {exc}")
        resumed = serve_replay(
            trace_a, root_path / "registry", resume=True, **kwargs
        )
    if resumed.digest() == chaos_digests[0]:
        print(
            f"  kill-and-resume ok (resumed from event {resumed.resumed_from}, "
            "digest matches uninterrupted run)"
        )
    else:
        print(
            f"  KILL-AND-RESUME MISMATCH: {resumed.digest()[:16]} != "
            f"{chaos_digests[0][:16]}"
        )
        failures += 1

    print("writing the segmented trace store and breaking it ...", flush=True)
    config = preset_config(args.preset)
    with tempfile.TemporaryDirectory() as root:
        root_path = Path(root)
        store = simulate_trace_to_store(config, root_path / "store", segments=4)
        streamed = store_trace_digest(store)
        loaded = trace_digest(store.load_trace())
        if loaded == digest_a:
            print(f"  segmented store ok (bit-identical to serial, {streamed[:16]}...)")
        else:
            print(f"  SEGMENTED != SERIAL: {loaded[:16]} != {digest_a[:16]}")
            failures += 1

        # Kill the segmented simulation after one committed segment, then
        # resume: the journal must carry it to the same bits.
        try:
            simulate_trace_to_store(
                config, root_path / "crashy", segments=4, crash_after_segments=1
            )
        except SimulatedCrashError as exc:
            print(f"  killed: {exc}")
        resumed = simulate_trace_to_store(
            config, root_path / "crashy", segments=4, resume=True
        )
        if store_trace_digest(resumed) == streamed:
            print("  kill-and-resume ok (resumed store matches uninterrupted)")
        else:
            print(
                f"  STORE KILL-AND-RESUME MISMATCH: "
                f"{store_trace_digest(resumed)[:16]} != {streamed[:16]}"
            )
            failures += 1

        # Every disk-fault kind must heal back to the serial bits on load.
        for kind in DISK_FAULT_KINDS:
            copy_root = root_path / f"fault-{kind}"
            shutil.copytree(root_path / "store", copy_root)
            damaged = SegmentedTraceStore(copy_root)
            inject_disk_fault(
                damaged, DiskFaultSpec(kind, seed=args.fault_seed)
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedDataWarning)
                healed = store_trace_digest(damaged)
            if healed == streamed:
                print(f"  disk fault {kind!r} healed bit-identically")
            else:
                print(
                    f"  DISK FAULT {kind!r} MISMATCH after recovery: "
                    f"{healed[:16]} != {streamed[:16]}"
                )
                failures += 1

    print("determinism check:", "PASS" if failures == 0 else f"FAIL ({failures})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
