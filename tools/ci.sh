#!/usr/bin/env bash
# Single CI entry point: determinism gate (incl. the sharded --jobs 2,
# scenario-neutrality, segmented-store, and gateway-parity legs) +
# tier-1 tests + golden-digest regression + parallel smoke + serve
# smoke legs (clean, chaos, kill-and-resume) + drift smoke (regime
# change -> detector fires -> guarded retrain recovers F1; poisoned
# refit rolled back; rollback CLI) + gateway smoke (HTTP fleet, alarms,
# zero-drop ledger) + disk-fault smoke (inject -> recover -> digest
# parity) + obs digest-neutrality gate (content digests identical with
# observability off/on/sampled; obs snapshots seed-reproducible) +
# bench regression gate.
#
# Usage: tools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
# Pinned hypothesis profile: derandomized, bounded examples/deadline.
export HYPOTHESIS_PROFILE=ci
# Fixed hash seed: digests and goldens must not depend on machine entropy.
export PYTHONHASHSEED=0

echo "== determinism check (incl. sharded, chaos + kill-and-resume legs) =="
python tools/check_determinism.py --preset tiny

echo
echo "== tier-1 tests =="
# -p no:randomly pins test order even if pytest-randomly is installed:
# the suite must pass in its deterministic order with the fixed seed.
python -m pytest -x -q -p no:randomly

echo
echo "== golden-digest regression =="
python -m pytest tests/golden -q -p no:randomly

echo
echo "== parallel smoke (--jobs 2) =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
python -m repro.cli --preset tiny --jobs 2 simulate \
    --out "$workdir/trace-sharded" --shards 2
python -m repro.cli --preset tiny --jobs 2 simulate \
    --out "$workdir/trace-scenario" --shards 2 --scenario regime-change
REPRO_CACHE_DIR="$workdir/cache" python -m repro.cli --preset tiny --jobs 2 \
    experiment fig1 fig3

echo
echo "== serve-replay smoke =="
python -m repro.cli --preset tiny serve-replay \
    --registry "$workdir/registry" --fast --batch-size 64

echo
echo "== chaos-replay smoke =="
python -m repro.cli --preset tiny serve-replay \
    --registry "$workdir/registry-chaos" --fast --batch-size 64 \
    --chaos 0.25 --chaos-seed 7

echo
echo "== kill-and-resume smoke =="
# First leg crashes on purpose (exit 1, one-line error), second resumes.
if python -m repro.cli --preset tiny serve-replay \
    --registry "$workdir/registry-resume" --fast --batch-size 64 \
    --chaos 0.25 --chaos-seed 7 \
    --checkpoint-dir "$workdir/ckpt" --checkpoint-every 300 \
    --crash-after 900; then
    echo "expected the crash leg to exit nonzero" >&2
    exit 1
fi
python -m repro.cli --preset tiny serve-replay \
    --registry "$workdir/registry-resume" --fast --batch-size 64 \
    --chaos 0.25 --chaos-seed 7 \
    --checkpoint-dir "$workdir/ckpt" --resume

echo
echo "== drift smoke =="
# Regime-change trace through the governed serving path: the detectors
# must fire, the windowed drift retrains must recover late-window F1 to
# within the experiment gate of the fresh post-change oracle, and a
# poisoned refit (validates cleanly against its own poisoned holdout)
# must be rolled back automatically by the post-swap monitor.  The
# governed registry is kept so the rollback CLI can be exercised on a
# registry with real retrain history.
python - "$workdir" <<'PY'
import sys
from pathlib import Path

from repro.experiments.drift_experiment import (
    drift_detector_config,
    drift_plan,
    drift_trace_config,
    run_drift,
)
from repro.experiments.runner import ExperimentContext
from repro.features.splits import DatasetSplit
from repro.serve import serve_replay
from repro.telemetry.simulator import simulate_trace

workdir = Path(sys.argv[1])
d = run_drift(ExperimentContext("tiny", use_disk_cache=False)).data
assert d["governed_drift_retrains"] >= 1, d
assert d["stale_gap"] >= d["min_stale_gap"], d
assert d["governed_gap"] <= d["max_governed_gap"], d
assert d["poison_caught"] and d["poison_rollbacks"] >= 1, d
print(
    f"drift smoke ok (stale gap {d['stale_gap']:+.4f}, governed gap "
    f"{d['governed_gap']:+.4f} within {d['max_governed_gap']:.2f}, "
    f"{d['governed_drift_retrains']} drift retrains, recovery in "
    f"{d['time_to_recover_days']:.2f} days, "
    f"{d['poison_rollbacks']} poisoned-leg rollback(s))"
)

# One more governed replay into a kept registry for the CLI legs below.
plan = drift_plan("tiny")
trace = simulate_trace(drift_trace_config("tiny"))
split = DatasetSplit(
    "DRIFT", 0.0, plan["train_days"] * 1440.0, plan["duration_days"] * 1440.0
)
report = serve_replay(
    trace,
    workdir / "registry-drift",
    splits=[split],
    split="DRIFT",
    model="gbdt",
    random_state=0,
    fast=True,
    drift=drift_detector_config(),
    retrain_window_days=8.0,
)
assert len(report.registry_versions) >= 2, report.registry_versions
PY
# Rollback CLI: pin the head back to v1, verify the registry, and
# require a one-line refusal (nonzero exit) on a missing target.
python -m repro.cli registry rollback \
    --registry "$workdir/registry-drift" --to 1
python -m repro.cli registry verify --registry "$workdir/registry-drift"
if python -m repro.cli registry rollback \
    --registry "$workdir/registry-drift" --to 999 2>/dev/null; then
    echo "expected rollback to refuse a missing target version" >&2
    exit 1
fi

echo
echo "== gateway smoke =="
# In-process gateway behind its HTTP front end: three synthetic clients
# post the full fleet stream, alarms must fire, the zero-drop ledger
# must balance, and shutdown must drain cleanly.
python - <<'PY'
import asyncio
import tempfile

from repro.experiments.presets import preset_config, split_plan
from repro.features.splits import make_paper_splits
from repro.gateway import (
    GatewayConfig,
    GatewayHTTPServer,
    build_gateway,
    run_fleet,
)
from repro.telemetry.simulator import simulate_trace

trace = simulate_trace(preset_config("tiny"))
plan = split_plan("tiny")
splits = make_paper_splits(
    train_days=plan["train_days"],
    test_days=plan["test_days"],
    offsets_days=tuple(plan["offsets"]),
    duration_days=trace.config.duration_days,
)


async def go():
    with tempfile.TemporaryDirectory() as root:
        gateway = build_gateway(
            trace,
            root,
            splits=splits,
            config=GatewayConfig(shards=2, batch_size=64),
            fast=True,
        )
        await gateway.start()
        server = GatewayHTTPServer(gateway)
        await server.start()
        fleet = await run_fleet(gateway, trace, clients=3, server=server)
        await gateway.close()
        await server.close()
        assert fleet.via_http, "fleet did not go over HTTP"
        assert fleet.events_sent == gateway.stats.events_in, (
            fleet.events_sent,
            gateway.stats.events_in,
        )
        assert gateway.alarm_engine.alarms, "no alarms raised"
        assert gateway.stats.zero_drop, gateway.stats.to_dict()
        print(
            f"gateway smoke ok ({fleet.events_sent} events over HTTP from "
            f"{fleet.clients} clients, {len(gateway.alarm_engine.alarms)} "
            f"alarms, ledger balanced)"
        )


asyncio.run(go())
PY
REPRO_CACHE_DIR="$workdir/cache" python -m repro.cli --preset tiny \
    gateway --shards 1,2

echo
echo "== disk-fault smoke =="
# Segmented store: inject a bit flip, require verify to flag it, recover,
# and require the healed digest to match the pristine one bit for bit.
python -m repro.cli --preset tiny store simulate \
    --out "$workdir/store" --segments 4
d0="$(python -m repro.cli store digest --store "$workdir/store")"
python -m repro.cli store inject --store "$workdir/store" \
    --kind bitflip --seed 3
if python -m repro.cli store verify --store "$workdir/store"; then
    echo "expected verify to flag the injected disk fault" >&2
    exit 1
fi
python -m repro.cli store recover --store "$workdir/store"
python -m repro.cli store verify --store "$workdir/store"
d1="$(python -m repro.cli store digest --store "$workdir/store")"
if [ "$d0" != "$d1" ]; then
    echo "disk-fault recovery changed the trace digest: $d0 != $d1" >&2
    exit 1
fi
echo "disk-fault smoke ok (digest $d0 preserved through recovery)"

echo
echo "== registry audit =="
# The clean-leg registry must verify ok.  (The chaos registries may hold
# corrupt hot-swap debris by design, which verify would rightly flag.)
python -m repro.cli registry verify --registry "$workdir/registry"

echo
echo "== obs digest-neutrality gate =="
# Observability must be read-only: trace and replay content digests are
# bit-identical with recording off, on, and sampled, and two same-seed
# runs against fresh registries produce the same snapshot digest.
python - "$workdir" <<'PY'
import sys
import tempfile
sys.path.insert(0, "tools")

from check_determinism import trace_digest

from repro.experiments.presets import preset_config, split_plan
from repro.features.splits import make_paper_splits
from repro.obs import MetricsRegistry, use_registry
from repro.serve import serve_replay
from repro.telemetry.simulator import simulate_trace

config = preset_config("tiny")
plan = split_plan("tiny")

digests = {}
snapshot_digests = []
for mode in ("off", "on", "sample", "on"):
    with use_registry(MetricsRegistry(mode=mode)) as registry:
        trace = simulate_trace(config)
        digests.setdefault(mode, set()).add(trace_digest(trace))
        if mode == "on":
            snapshot_digests.append(registry.snapshot_digest())
(unique,) = {d for seen in digests.values() for d in seen}
print(f"  trace digest mode-neutral ({unique[:16]}...)")
assert snapshot_digests[0] == snapshot_digests[1], snapshot_digests
print(f"  obs snapshot seed-stable ({snapshot_digests[0][:16]}...)")

splits = make_paper_splits(
    train_days=plan["train_days"],
    test_days=plan["test_days"],
    offsets_days=tuple(plan["offsets"]),
    duration_days=trace.config.duration_days,
)
replay_digests = {}
for mode in ("off", "on"):
    with use_registry(MetricsRegistry(mode=mode)):
        with tempfile.TemporaryDirectory() as root:
            report = serve_replay(
                trace, root, splits=splits, fast=True, batch_size=64
            )
            replay_digests[mode] = report.digest()
assert replay_digests["off"] == replay_digests["on"], replay_digests
print(f"  serve-replay digest mode-neutral ({replay_digests['on'][:16]}...)")
PY
# CLI surface: --obs-snapshot writes a loadable snapshot; report renders
# it; diff of a snapshot against itself is empty (exit 0).
REPRO_CACHE_DIR="$workdir/cache" python -m repro.cli --preset tiny \
    --obs on --obs-snapshot "$workdir/obs-snap.json" \
    simulate --out "$workdir/trace-obs"
python -m repro.cli obs report "$workdir/obs-snap.json" > /dev/null
python -m repro.cli obs diff "$workdir/obs-snap.json" "$workdir/obs-snap.json"

echo
echo "== hot-path kernel bench (quick) =="
# Re-measures GBDT batch scoring on this machine with the fast model
# caps and refreshes BENCH_hotpath.json.  The script itself asserts
# bit-identical scores across paths and a minimum micro-batch speedup;
# the regression gate below then compares the machine-relative speedup
# ratios against tools/bench_baseline.json (absolute rows/sec are
# deliberately not pinned — they vary by machine).
python benchmarks/bench_hotpath.py --quick

echo
echo "== bench regression gate =="
# Trajectory table over every BENCH_*.json; fails on >20% regression
# against the pinned baseline once one exists (vacuous pass until then).
python tools/bench_report.py --check
