#!/usr/bin/env bash
# Single CI entry point: determinism gate + tier-1 tests + serve smoke.
#
# Usage: tools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== determinism check =="
python tools/check_determinism.py --preset tiny

echo
echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== serve-replay smoke =="
registry="$(mktemp -d)"
trap 'rm -rf "$registry"' EXIT
python -m repro.cli --preset tiny serve-replay \
    --registry "$registry" --fast --batch-size 64
