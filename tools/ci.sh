#!/usr/bin/env bash
# Single CI entry point: determinism gate + tier-1 test suite.
#
# Usage: tools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== determinism check =="
python tools/check_determinism.py --preset tiny

echo
echo "== tier-1 tests =="
python -m pytest -x -q
