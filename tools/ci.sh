#!/usr/bin/env bash
# Single CI entry point: determinism gate + tier-1 tests + serve smoke
# legs (clean, chaos, kill-and-resume).
#
# Usage: tools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
# Pinned hypothesis profile: derandomized, bounded examples/deadline.
export HYPOTHESIS_PROFILE=ci

echo "== determinism check (incl. chaos + kill-and-resume legs) =="
python tools/check_determinism.py --preset tiny

echo
echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== serve-replay smoke =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
python -m repro.cli --preset tiny serve-replay \
    --registry "$workdir/registry" --fast --batch-size 64

echo
echo "== chaos-replay smoke =="
python -m repro.cli --preset tiny serve-replay \
    --registry "$workdir/registry-chaos" --fast --batch-size 64 \
    --chaos 0.25 --chaos-seed 7

echo
echo "== kill-and-resume smoke =="
# First leg crashes on purpose (exit 1, one-line error), second resumes.
if python -m repro.cli --preset tiny serve-replay \
    --registry "$workdir/registry-resume" --fast --batch-size 64 \
    --chaos 0.25 --chaos-seed 7 \
    --checkpoint-dir "$workdir/ckpt" --checkpoint-every 300 \
    --crash-after 900; then
    echo "expected the crash leg to exit nonzero" >&2
    exit 1
fi
python -m repro.cli --preset tiny serve-replay \
    --registry "$workdir/registry-resume" --fast --batch-size 64 \
    --chaos 0.25 --chaos-seed 7 \
    --checkpoint-dir "$workdir/ckpt" --resume

echo
echo "== registry audit =="
# The clean-leg registry must verify ok.  (The chaos registries may hold
# corrupt hot-swap debris by design, which verify would rightly flag.)
python -m repro.cli registry verify --registry "$workdir/registry"
