"""End-to-end check of Table I + Fig 10 on DS1 (cached trace)."""
import os, time
import numpy as np
from repro.telemetry import TraceConfig, simulate_trace, Trace
from repro.topology import MachineConfig
from repro.features import build_features
from repro.core import PredictionPipeline

CACHE = "/root/repo/.cache/e2e_trace"
if os.path.exists(CACHE + ".npz"):
    trace = Trace.load(CACHE)
    print("loaded cached trace")
else:
    cfg = TraceConfig(
        machine=MachineConfig(grid_x=25, grid_y=8, cages_per_cabinet=1,
                              slots_per_cage=1, nodes_per_slot=4),
        duration_days=126, tick_minutes=5, seed=2018)
    t0 = time.time()
    trace = simulate_trace(cfg)
    print(f"simulated in {time.time()-t0:.0f}s")
    trace.save(CACHE)

t0 = time.time()
features = build_features(trace)
print(f"features: {features.X.shape} in {time.time()-t0:.0f}s; pos rate {features.y.mean():.4f}")

pipe = PredictionPipeline(features)
print("\n--- Table I (basic schemes, DS1) ---")
for scheme in ("random", "basic_a", "basic_b", "basic_c"):
    r = pipe.evaluate_basic("DS1", scheme)
    print(f"{scheme:8s} SBE p={r.precision:.2f} r={r.recall:.2f} | "
          f"non-SBE p={r.report['non_sbe']['precision']:.2f} r={r.report['non_sbe']['recall']:.2f}")

print("\n--- Fig 10 (TwoStage models, DS1) ---")
for model in ("lr", "gbdt", "nn", "svm"):
    t0 = time.time()
    r = pipe.evaluate_twostage("DS1", model)
    print(f"{model:5s} F1={r.f1:.3f} p={r.precision:.3f} r={r.recall:.3f} "
          f"train={r.train_seconds:.1f}s total={time.time()-t0:.0f}s")
