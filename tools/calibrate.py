"""Calibration harness: simulate a mid-size trace and print the paper's
Section III statistics next to their targets (DESIGN.md, section 5)."""
import time
import numpy as np

from repro.telemetry import TraceConfig, simulate_trace
from repro.topology import MachineConfig
from repro.utils.stats import spearman

cfg = TraceConfig(
    machine=MachineConfig(grid_x=25, grid_y=8, cages_per_cabinet=1,
                          slots_per_cage=1, nodes_per_slot=4),
    duration_days=126, tick_minutes=5, seed=2018,
)
t0 = time.time()
trace = simulate_trace(cfg)
print(f"sim: {time.time()-t0:.0f}s  nodes={trace.machine.num_nodes} "
      f"runs={trace.num_runs} samples={trace.num_samples}")

s = trace.samples
lab = trace.sample_labels()
print(f"positive rate: {lab.mean():.4f}   (target < 0.02)")

# training-period offenders (first 84 days) and stage-2 stats on test window
train = s["end_minute"] < 84*1440
test = (s["start_minute"] >= 84*1440) & (s["start_minute"] < 98*1440)
train_off = np.unique(s["node_id"][train & (s["sbe_count"] > 0)])
off_mask = np.isin(s["node_id"], train_off)
n_nodes = trace.machine.num_nodes
print(f"observed offender nodes (train): {train_off.size}/{n_nodes} = {train_off.size/n_nodes:.3f}")
t2 = test & off_mask
print(f"stage-2 test pool: {t2.sum()} samples, positive rate {lab[t2].mean():.3f} (target ~0.33; BasicA precision 0.40)")
print(f"BasicA recall on test: {lab[t2].sum() / max(1, lab[test].sum()):.3f}  (target 0.94)")

# day coverage of observed offenders
days = (s["start_minute"] // 1440).astype(int)
total_days = int(days.max()) + 1
frac_days = []
all_off = np.unique(s["node_id"][s["sbe_count"] > 0])
for node in all_off:
    m = (s["node_id"] == node) & (s["sbe_count"] > 0)
    frac_days.append(np.unique(days[m]).size / total_days)
frac_days = np.array(frac_days)
print(f"offenders with SBEs on <20% of days: {(frac_days < 0.2).mean():.2f}  (target ~0.8)")

# app skew (fig 3a): top 20% of SBE apps hold >90% of SBEs
app_sbe = np.zeros(len(trace.app_names))
np.add.at(app_sbe, s["app_id"], s["sbe_count"])
affected = np.sort(app_sbe[app_sbe > 0])[::-1]
top20 = affected[: max(1, int(np.ceil(0.2 * affected.size)))].sum() / affected.sum()
print(f"SBE apps: {affected.size}/{len(trace.app_names)}; top-20% share: {top20:.2f}  (target > 0.9)")

# fig 4: spearman of normalized SBE count vs core-hours / memory (per app, SBE-affected)
app_ch = np.zeros(len(trace.app_names)); app_mem = np.zeros(len(trace.app_names))
np.add.at(app_ch, s["app_id"], s["gpu_core_hours"] / s["n_nodes"])  # node-level core hours
np.add.at(app_mem, s["app_id"], s["max_mem_gb"])
aff = app_sbe > 0
norm_sbe = app_sbe[aff] / app_ch[aff]
app_cnt = np.bincount(s["app_id"], minlength=len(trace.app_names)).astype(float)
mean_mem = np.where(app_cnt>0, app_mem/np.maximum(app_cnt,1), 0)
print(f"spearman(app norm SBE, core-hours): {spearman(norm_sbe, app_ch[aff]):.2f} (paper 0.89)")
print(f"spearman(app norm SBE, mean mem):   {spearman(norm_sbe, mean_mem[aff]):.2f} (paper 0.70)")

# fig 6/7: temp & power in SBE-affected vs free periods on offender nodes
off_all = np.isin(s["node_id"], np.unique(s["node_id"][s["sbe_count"] > 0]))
t_aff = s["gpu_temp_mean"][off_all & (lab == 1)]
t_free = s["gpu_temp_mean"][off_all & (lab == 0)]
p_aff = s["gpu_power_mean"][off_all & (lab == 1)]
p_free = s["gpu_power_mean"][off_all & (lab == 0)]
print(f"temp free {t_free.mean():.1f}±{t_free.std():.1f} vs affected {t_aff.mean():.1f}±{t_aff.std():.1f}  (target +3C)")
print(f"power free {p_free.mean():.1f}±{p_free.std():.1f} vs affected {p_aff.mean():.1f}±{p_aff.std():.1f}  (target +15W)")

# fig 5: spearman of node mean temp vs offender node grid
node_sbe = trace.node_sbe_totals()
print(f"spearman(node mean temp, node SBE): {spearman(trace.node_mean_temp, (node_sbe>0).astype(float)):.2f} (paper ~0.07)")
